// Package core implements the paper's three network-based clustering
// algorithms (Yiu & Mamoulis, SIGMOD 2004, §4):
//
//   - KMedoids: partitioning clustering with concurrent multi-source medoid
//     expansion (Fig. 4) and incremental medoid replacement (Fig. 5);
//   - EpsLink: the ε-Link density-based algorithm (Fig. 6), together with a
//     network adaptation of DBSCAN used as the paper's density baseline;
//   - SingleLink: hierarchical single-link clustering via interleaved
//     network-Voronoi expansion and cluster merging (Fig. 8), with the δ
//     scalability heuristic and §5.3 interesting-level detection.
//
// All algorithms operate through the network.Graph interface, so they run
// unchanged over the in-memory network and the disk-based store, and they
// never compute all-pairs distances: each traverses the network at most a
// constant number of times per iteration.
package core

import "netclus/internal/network"

// Noise is the label of points not assigned to any cluster (outliers).
const Noise int32 = -1

// Stats counts the work an algorithm performed, independent of wall time.
// Benchmarks report them next to durations so the paper's cost arguments
// (which algorithm traverses how much of the graph) can be checked directly.
type Stats struct {
	NodesSettled int // priority-queue dequeues that were accepted
	HeapPushes   int // priority-queue insertions
	EdgesVisited int // adjacency entries examined
	GroupsRead   int // point-group fetches
	RangeQueries int // ε-range queries issued (DBSCAN)

	// CritNs and WallNs model parallel clustering runs through a fused
	// kernel (network.ClusterKernel): CritNs is the critical path — the
	// slowest worker stripe plus the serial merge — i.e. what a host with
	// one core per worker would pay, WallNs the realized wall time on this
	// host. Both zero for runs that did not go through a kernel.
	CritNs int64
	WallNs int64

	// Prune counts the work saved by lower-bound pruning; all-zero when no
	// Bounder was configured.
	Prune network.PruneStats
}

func (s *Stats) add(o Stats) {
	s.NodesSettled += o.NodesSettled
	s.HeapPushes += o.HeapPushes
	s.EdgesVisited += o.EdgesVisited
	s.GroupsRead += o.GroupsRead
	s.RangeQueries += o.RangeQueries
	s.CritNs += o.CritNs
	s.WallNs += o.WallNs
	s.Prune.Add(o.Prune)
}

// CountClusters returns the number of distinct non-noise labels.
func CountClusters(labels []int32) int {
	seen := make(map[int32]struct{})
	for _, l := range labels {
		if l != Noise {
			seen[l] = struct{}{}
		}
	}
	return len(seen)
}

// ClusterSizes returns the size of every non-noise cluster keyed by label,
// and the number of noise points.
func ClusterSizes(labels []int32) (sizes map[int32]int, noise int) {
	sizes = make(map[int32]int)
	for _, l := range labels {
		if l == Noise {
			noise++
		} else {
			sizes[l]++
		}
	}
	return sizes, noise
}

// SuppressSmallClusters relabels clusters with fewer than minSup members to
// Noise, in place, and returns labels. It implements the paper's min_sup
// post-filter for ε-Link (§4.3.1).
func SuppressSmallClusters(labels []int32, minSup int) []int32 {
	if minSup <= 1 {
		return labels
	}
	sizes, _ := ClusterSizes(labels)
	for i, l := range labels {
		if l != Noise && sizes[l] < minSup {
			labels[i] = Noise
		}
	}
	return labels
}

// suppressAndCountDense is SuppressSmallClusters followed by CountClusters
// for label slices whose non-noise values are dense in [0, found) — the
// shape every ε-Link path produces (sequential Fig. 6 numbers clusters
// 0,1,2,… as it discovers them; the parallel paths label components by
// ascending minimum member). One counting pass over a slice replaces the
// generic map bookkeeping, which profiles as the dominant cost of ε-Link
// runs on small-to-medium datasets.
func suppressAndCountDense(labels []int32, minSup, found int) int {
	if found <= 0 {
		return 0
	}
	counts := make([]int32, found)
	for _, l := range labels {
		if l >= 0 {
			counts[l]++
		}
	}
	sup := int32(minSup)
	if sup > 1 {
		for i, l := range labels {
			if l >= 0 && counts[l] < sup {
				labels[i] = Noise
			}
		}
	}
	num := 0
	for _, c := range counts {
		if c >= sup && c > 0 {
			num++
		}
	}
	return num
}

// allPointInfos resolves every point once. Several algorithms need a
// sequential pass over point positions; Graph.ScanGroups keeps it a single
// sequential read of the points file.
func allPointInfos(g network.Graph) ([]network.PointInfo, error) {
	infos := make([]network.PointInfo, g.NumPoints())
	err := g.ScanGroups(func(gid network.GroupID, pg network.PointGroup, offsets []float64) error {
		for i, off := range offsets {
			infos[pg.First+network.PointID(i)] = network.PointInfo{
				Group: gid, N1: pg.N1, N2: pg.N2, Pos: off, Weight: pg.Weight,
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return infos, nil
}
