package core_test

import (
	"math/rand"
	"testing"

	"netclus/internal/core"
	"netclus/internal/network"
	"netclus/internal/testnet"
)

// benchDataset is a mid-size clustered workload shared by the algorithm
// micro-benchmarks (distinct from the paper-scale benches at the repo root).
func benchDataset(b *testing.B) (g interface {
	network.Graph
}, eps, delta float64) {
	b.Helper()
	net, cfg, err := testnet.RandomClustered(1, 4000, 12000, 10)
	if err != nil {
		b.Fatal(err)
	}
	return net, cfg.Eps(), cfg.Delta()
}

func BenchmarkEpsLink(b *testing.B) {
	g, eps, _ := benchDataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.EpsLink(g, core.EpsLinkOptions{Eps: eps, MinSup: 3}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDBSCAN(b *testing.B) {
	g, eps, _ := benchDataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.DBSCAN(g, core.DBSCANOptions{Eps: eps, MinPts: 3}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSingleLinkFull(b *testing.B) {
	g, _, _ := benchDataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.SingleLink(g, core.SingleLinkOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSingleLinkDelta(b *testing.B) {
	g, _, delta := benchDataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.SingleLink(g, core.SingleLinkOptions{Delta: delta}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKMedoidsLocalOptimum(b *testing.B) {
	g, _, _ := benchDataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(int64(i)))
		if _, err := core.KMedoids(g, core.KMedoidsOptions{K: 10, Rand: rng}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIncMedoidUpdate(b *testing.B) {
	g, _, _ := benchDataset(b)
	rng := rand.New(rand.NewSource(7))
	k := 10
	infos := make([]network.PointInfo, k)
	for i := range infos {
		pi, err := g.PointInfo(network.PointID(rng.Intn(g.NumPoints())))
		if err != nil {
			b.Fatal(err)
		}
		infos[i] = pi
	}
	st := core.NewMedoidState(g.NumNodes())
	var stats core.Stats
	if err := core.MedoidDistFind(g, infos, st, &stats); err != nil {
		b.Fatal(err)
	}
	backup := core.NewMedoidState(g.NumNodes())
	backup.CopyFrom(st)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		slot := i % k
		ci, err := g.PointInfo(network.PointID(rng.Intn(g.NumPoints())))
		if err != nil {
			b.Fatal(err)
		}
		old := infos[slot]
		infos[slot] = ci
		if err := core.IncMedoidUpdate(g, infos, slot, st, &stats); err != nil {
			b.Fatal(err)
		}
		infos[slot] = old
		st.CopyFrom(backup)
	}
}

func BenchmarkAssignPoints(b *testing.B) {
	g, _, _ := benchDataset(b)
	rng := rand.New(rand.NewSource(7))
	infos := make([]network.PointInfo, 10)
	for i := range infos {
		pi, err := g.PointInfo(network.PointID(rng.Intn(g.NumPoints())))
		if err != nil {
			b.Fatal(err)
		}
		infos[i] = pi
	}
	st := core.NewMedoidState(g.NumNodes())
	var stats core.Stats
	if err := core.MedoidDistFind(g, infos, st, &stats); err != nil {
		b.Fatal(err)
	}
	labels := make([]int32, g.NumPoints())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.AssignPoints(g, infos, st, labels, &stats); err != nil {
			b.Fatal(err)
		}
	}
}
