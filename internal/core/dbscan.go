package core

import (
	"context"
	"fmt"

	"netclus/internal/network"
	"netclus/internal/unionfind"
)

// DBSCANOptions configures the network adaptation of DBSCAN (§4.3): the
// classical algorithm with Euclidean range queries replaced by network
// ε-range queries (expansion of the network around the query point).
type DBSCANOptions struct {
	// Eps is the neighbourhood radius (network distance).
	Eps float64
	// MinPts is the density threshold: a point is a core point when its
	// ε-neighbourhood (itself included) holds at least MinPts points. The
	// paper's experiments use MinPts = 3.
	MinPts int
	// Workers fans the range queries across this many goroutines (<= 1 runs
	// the sequential expansion). The parallel mode makes two passes — core
	// flags, then core-core unions plus border adoption — each worker with
	// its own graph read view and scratch; labels are identical to the
	// sequential run.
	Workers int
	// Prune, when non-nil, runs every ε-range query through the
	// filter-and-refine path (see network.RangeScratch.SetBounder). Labels
	// are identical either way; Stats.Prune reports the saved work.
	Prune network.Bounder
}

// DBSCANResult is the outcome of one DBSCAN run.
type DBSCANResult struct {
	// Labels holds a cluster index per point, Noise for noise points.
	Labels []int32
	// NumClusters counts the discovered clusters.
	NumClusters int
	// CorePoints counts points that met the density threshold.
	CorePoints int
	// Core flags the points that met the density threshold. Border points
	// (non-core members of a cluster) may legally join any adjacent
	// cluster, so equality checks across implementations should compare
	// core points only.
	Core []bool
	// Stats aggregates traversal work; RangeQueries is the number of
	// ε-range queries issued (one per point, the reason the paper finds
	// DBSCAN slower than ε-Link despite identical output).
	Stats Stats
}

// DBSCAN clusters the points with the density-based paradigm: every
// unvisited point is probed with a network ε-range query; core points start
// or extend clusters, density-reachable points join them, the rest is noise.
// With MinPts = 2 its output matches EpsLink (modulo min_sup filtering);
// with larger MinPts it is more robust to noise but issues many more range
// queries, which is what Table 2 measures.
func DBSCAN(g network.Graph, opts DBSCANOptions) (*DBSCANResult, error) {
	return DBSCANCtx(context.Background(), g, opts)
}

// DBSCANCtx is DBSCAN with cancellation: the range queries check ctx
// periodically and the run returns an error wrapping ctx.Err() when it is
// done. With opts.Workers > 1 the queries are fanned across that many
// goroutines.
func DBSCANCtx(ctx context.Context, g network.Graph, opts DBSCANOptions) (*DBSCANResult, error) {
	if !(opts.Eps > 0) {
		return nil, fmt.Errorf("%w: DBSCAN: Eps must be > 0 (got %v)", ErrInvalidOptions, opts.Eps)
	}
	if opts.MinPts < 1 {
		return nil, fmt.Errorf("%w: DBSCAN: MinPts must be >= 1 (got %d)", ErrInvalidOptions, opts.MinPts)
	}
	// An explicit Workers request (>= 1) on a graph with a fused clustering
	// engine runs the kernel path; Workers left zero keeps the sequential
	// expansion, and graphs without a kernel fall back to the generic
	// two-pass fan-out. All three produce identical labels.
	if ck, ok := g.(network.ClusterKernel); ok && opts.Workers >= 1 {
		return dbscanKernel(ctx, g, ck, opts, normWorkers(opts.Workers))
	}
	if workers := normWorkers(opts.Workers); workers > 1 {
		return dbscanParallel(ctx, g, opts, workers)
	}
	n := g.NumPoints()
	res := &DBSCANResult{Labels: make([]int32, n), Core: make([]bool, n)}
	const unvisited = int32(-2)
	labels := res.Labels
	for i := range labels {
		labels[i] = unvisited
	}
	scratch := network.ScratchFor(g)
	scratch.SetBounder(opts.Prune)
	defer func() { res.Stats.Prune.Add(scratch.PruneStats()) }()
	var queue []network.PointID
	next := int32(0)
	for p := 0; p < n; p++ {
		if labels[p] != unvisited {
			continue
		}
		nb, err := scratch.RangeQueryCtx(ctx, g, network.PointID(p), opts.Eps)
		if err != nil {
			return nil, err
		}
		res.Stats.RangeQueries++
		if len(nb) < opts.MinPts {
			labels[p] = Noise
			continue
		}
		res.CorePoints++
		res.Core[p] = true
		c := next
		next++
		labels[p] = c
		queue = append(queue[:0], nb...)
		for len(queue) > 0 {
			q := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			if labels[q] == Noise {
				labels[q] = c // border point reclaimed from noise
				continue
			}
			if labels[q] != unvisited {
				continue
			}
			labels[q] = c
			qnb, err := scratch.RangeQueryCtx(ctx, g, q, opts.Eps)
			if err != nil {
				return nil, err
			}
			res.Stats.RangeQueries++
			if len(qnb) >= opts.MinPts {
				res.CorePoints++
				res.Core[q] = true
				queue = append(queue, qnb...)
			}
		}
	}
	res.NumClusters = int(next)
	return res, nil
}

// borderEdge records that non-core point border lies in the ε-neighbourhood
// of core point core — a cluster-adoption candidate.
type borderEdge struct {
	border network.PointID
	core   network.PointID
}

// dbscanParallel reproduces the sequential labelling in two parallel passes.
//
// Pass 1 flags core points (one ε-range query per point). Pass 2 re-queries
// the core points only: core-core neighbour pairs are unioned (the clusters
// are exactly the components of the core-core ε-graph) and core-border
// pairs are recorded. Cluster IDs go to components by ascending minimum
// core point — the order the sequential outer scan discovers them — and a
// border point joins the smallest cluster ID among its core neighbours,
// which is the cluster that would have reached it first sequentially
// (clusters expand to completion one at a time, in ID order).
func dbscanParallel(ctx context.Context, g network.Graph, opts DBSCANOptions, workers int) (*DBSCANResult, error) {
	n := g.NumPoints()
	res := &DBSCANResult{Labels: make([]int32, n), Core: make([]bool, n)}
	core := res.Core
	statsArr := make([]Stats, workers)
	// Per-worker scratches of both passes, harvested for prune counters
	// after the workers finish (each slot is touched by one goroutine).
	scratches := make([]network.RangeQuerier, 2*workers)

	// Pass 1: core flags. Each worker writes disjoint core[p] slots.
	err := parallelPoints(workers, n, func(w int) func(lo, hi int) error {
		view := network.ReadView(g)
		scratch := network.ScratchFor(view)
		scratch.SetBounder(opts.Prune)
		scratches[w] = scratch
		st := &statsArr[w]
		return func(lo, hi int) error {
			for p := lo; p < hi; p++ {
				nb, err := scratch.RangeQueryCtx(ctx, view, network.PointID(p), opts.Eps)
				if err != nil {
					return err
				}
				st.RangeQueries++
				if len(nb) >= opts.MinPts {
					core[p] = true
				}
			}
			return nil
		}
	})
	if err != nil {
		return nil, err
	}

	// Pass 2: core-core unions and border adoption candidates.
	ufs := make([]*unionfind.UF, workers)
	borders := make([][]borderEdge, workers)
	err = parallelPoints(workers, n, func(w int) func(lo, hi int) error {
		view := network.ReadView(g)
		scratch := network.ScratchFor(view)
		scratch.SetBounder(opts.Prune)
		scratches[workers+w] = scratch
		uf := unionfind.New(n)
		ufs[w] = uf
		st := &statsArr[w]
		return func(lo, hi int) error {
			for p := lo; p < hi; p++ {
				if !core[p] {
					continue
				}
				nb, err := scratch.RangeQueryCtx(ctx, view, network.PointID(p), opts.Eps)
				if err != nil {
					return err
				}
				st.RangeQueries++
				for _, q := range nb {
					if core[q] {
						uf.Union(p, int(q))
					} else {
						borders[w] = append(borders[w], borderEdge{border: q, core: network.PointID(p)})
					}
				}
			}
			return nil
		}
	})
	if err != nil {
		return nil, err
	}

	uf := mergeUnionFinds(ufs)
	next := labelComponents(uf, res.Labels, func(p int) bool { return core[p] })
	labels := res.Labels
	for _, bl := range borders {
		for _, be := range bl {
			c := labels[uf.Find(int(be.core))]
			if labels[be.border] == Noise || c < labels[be.border] {
				labels[be.border] = c
			}
		}
	}
	for _, flag := range core {
		if flag {
			res.CorePoints++
		}
	}
	res.NumClusters = int(next)
	for _, st := range statsArr {
		res.Stats.add(st)
	}
	for _, sc := range scratches {
		if sc != nil {
			res.Stats.Prune.Add(sc.PruneStats())
		}
	}
	return res, nil
}
