package core

import (
	"fmt"

	"netclus/internal/network"
)

// DBSCANOptions configures the network adaptation of DBSCAN (§4.3): the
// classical algorithm with Euclidean range queries replaced by network
// ε-range queries (expansion of the network around the query point).
type DBSCANOptions struct {
	// Eps is the neighbourhood radius (network distance).
	Eps float64
	// MinPts is the density threshold: a point is a core point when its
	// ε-neighbourhood (itself included) holds at least MinPts points. The
	// paper's experiments use MinPts = 3.
	MinPts int
}

// DBSCANResult is the outcome of one DBSCAN run.
type DBSCANResult struct {
	// Labels holds a cluster index per point, Noise for noise points.
	Labels []int32
	// NumClusters counts the discovered clusters.
	NumClusters int
	// CorePoints counts points that met the density threshold.
	CorePoints int
	// Core flags the points that met the density threshold. Border points
	// (non-core members of a cluster) may legally join any adjacent
	// cluster, so equality checks across implementations should compare
	// core points only.
	Core []bool
	// Stats aggregates traversal work; RangeQueries is the number of
	// ε-range queries issued (one per point, the reason the paper finds
	// DBSCAN slower than ε-Link despite identical output).
	Stats Stats
}

// DBSCAN clusters the points with the density-based paradigm: every
// unvisited point is probed with a network ε-range query; core points start
// or extend clusters, density-reachable points join them, the rest is noise.
// With MinPts = 2 its output matches EpsLink (modulo min_sup filtering);
// with larger MinPts it is more robust to noise but issues many more range
// queries, which is what Table 2 measures.
func DBSCAN(g network.Graph, opts DBSCANOptions) (*DBSCANResult, error) {
	if !(opts.Eps > 0) {
		return nil, fmt.Errorf("core: DBSCAN needs Eps > 0, got %v", opts.Eps)
	}
	if opts.MinPts < 1 {
		return nil, fmt.Errorf("core: DBSCAN needs MinPts >= 1, got %d", opts.MinPts)
	}
	n := g.NumPoints()
	res := &DBSCANResult{Labels: make([]int32, n), Core: make([]bool, n)}
	const unvisited = int32(-2)
	labels := res.Labels
	for i := range labels {
		labels[i] = unvisited
	}
	scratch := network.NewRangeScratch(g)
	var queue []network.PointID
	next := int32(0)
	for p := 0; p < n; p++ {
		if labels[p] != unvisited {
			continue
		}
		nb, err := scratch.RangeQuery(g, network.PointID(p), opts.Eps)
		if err != nil {
			return nil, err
		}
		res.Stats.RangeQueries++
		if len(nb) < opts.MinPts {
			labels[p] = Noise
			continue
		}
		res.CorePoints++
		res.Core[p] = true
		c := next
		next++
		labels[p] = c
		queue = append(queue[:0], nb...)
		for len(queue) > 0 {
			q := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			if labels[q] == Noise {
				labels[q] = c // border point reclaimed from noise
				continue
			}
			if labels[q] != unvisited {
				continue
			}
			labels[q] = c
			qnb, err := scratch.RangeQuery(g, q, opts.Eps)
			if err != nil {
				return nil, err
			}
			res.Stats.RangeQueries++
			if len(qnb) >= opts.MinPts {
				res.CorePoints++
				res.Core[q] = true
				queue = append(queue, qnb...)
			}
		}
	}
	res.NumClusters = int(next)
	return res, nil
}
