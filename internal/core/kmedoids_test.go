package core_test

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"netclus/internal/core"
	"netclus/internal/matrix"
	"netclus/internal/network"
	"netclus/internal/testnet"
)

// medoidInfos resolves point IDs to positions.
func medoidInfos(t *testing.T, g network.Graph, ids []network.PointID) []network.PointInfo {
	t.Helper()
	out := make([]network.PointInfo, len(ids))
	for i, id := range ids {
		pi, err := g.PointInfo(id)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = pi
	}
	return out
}

func TestMedoidDistFindMatchesMatrix(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		g, err := testnet.Random(seed, 40, 60)
		if err != nil {
			t.Fatal(err)
		}
		nodeD, err := matrix.AllPairsNodeDistances(g)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(5)
		ids := make([]network.PointID, k)
		for i := range ids {
			ids[i] = network.PointID(rng.Intn(g.NumPoints()))
		}
		infos := medoidInfos(t, g, ids)

		st := core.NewMedoidState(g.NumNodes())
		var stats core.Stats
		if err := core.MedoidDistFind(g, infos, st, &stats); err != nil {
			t.Fatal(err)
		}
		for n := 0; n < g.NumNodes(); n++ {
			want := network.Inf
			for _, m := range infos {
				d := math.Min(nodeD[m.N1][n]+m.Pos, nodeD[m.N2][n]+m.Weight-m.Pos)
				want = math.Min(want, d)
			}
			if math.Abs(st.Dist[n]-want) > 1e-9 {
				t.Fatalf("seed %d node %d: dist %v, want %v", seed, n, st.Dist[n], want)
			}
			if st.Med[n] >= 0 {
				m := infos[st.Med[n]]
				d := math.Min(nodeD[m.N1][n]+m.Pos, nodeD[m.N2][n]+m.Weight-m.Pos)
				if math.Abs(d-st.Dist[n]) > 1e-9 {
					t.Fatalf("seed %d node %d: assigned medoid %d at %v but Dist %v",
						seed, n, st.Med[n], d, st.Dist[n])
				}
			}
		}
	}
}

func TestAssignPointsMatchesMatrix(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		g, err := testnet.Random(seed, 36, 50)
		if err != nil {
			t.Fatal(err)
		}
		dist, err := matrix.PointDistances(g)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed * 77))
		k := 1 + rng.Intn(4)
		ids := make([]network.PointID, k)
		mids := make([]int, k)
		for i := range ids {
			ids[i] = network.PointID(rng.Intn(g.NumPoints()))
			mids[i] = int(ids[i])
		}
		infos := medoidInfos(t, g, ids)

		st := core.NewMedoidState(g.NumNodes())
		var stats core.Stats
		if err := core.MedoidDistFind(g, infos, st, &stats); err != nil {
			t.Fatal(err)
		}
		labels := make([]int32, g.NumPoints())
		r, err := core.AssignPoints(g, infos, st, labels, &stats)
		if err != nil {
			t.Fatal(err)
		}
		_, wantD, wantR, err := matrix.NearestMedoids(dist, mids)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(r-wantR) > 1e-6 {
			t.Fatalf("seed %d: R = %v, matrix R = %v", seed, r, wantR)
		}
		// Ties may pick different medoids; the achieved distance must match.
		for p := 0; p < g.NumPoints(); p++ {
			if labels[p] < 0 {
				t.Fatalf("seed %d: point %d unassigned", seed, p)
			}
			got := dist[p][mids[labels[p]]]
			if math.Abs(got-wantD[p]) > 1e-9 {
				t.Fatalf("seed %d point %d: assigned at %v, optimum %v", seed, p, got, wantD[p])
			}
		}
	}
}

func TestIncMedoidUpdateEqualsRecompute(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		g, err := testnet.Random(seed+100, 50, 70)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed))
		k := 2 + rng.Intn(4)
		ids := make([]network.PointID, k)
		used := map[network.PointID]bool{}
		for i := range ids {
			for {
				p := network.PointID(rng.Intn(g.NumPoints()))
				if !used[p] {
					used[p] = true
					ids[i] = p
					break
				}
			}
		}
		infos := medoidInfos(t, g, ids)
		st := core.NewMedoidState(g.NumNodes())
		var stats core.Stats
		if err := core.MedoidDistFind(g, infos, st, &stats); err != nil {
			t.Fatal(err)
		}

		// Apply a chain of random replacements incrementally and compare
		// against a from-scratch recomputation after each.
		for step := 0; step < 6; step++ {
			slot := rng.Intn(k)
			var cand network.PointID
			for {
				cand = network.PointID(rng.Intn(g.NumPoints()))
				if !used[cand] {
					break
				}
			}
			used[cand] = true
			ci, err := g.PointInfo(cand)
			if err != nil {
				t.Fatal(err)
			}
			infos[slot] = ci
			if err := core.IncMedoidUpdate(g, infos, slot, st, &stats); err != nil {
				t.Fatal(err)
			}

			fresh := core.NewMedoidState(g.NumNodes())
			if err := core.MedoidDistFind(g, infos, fresh, &stats); err != nil {
				t.Fatal(err)
			}
			for n := 0; n < g.NumNodes(); n++ {
				if math.Abs(st.Dist[n]-fresh.Dist[n]) > 1e-9 {
					t.Fatalf("seed %d step %d node %d: incremental dist %v, fresh %v",
						seed, step, n, st.Dist[n], fresh.Dist[n])
				}
			}
		}
	}
}

func TestKMedoidsEndToEnd(t *testing.T) {
	g, cfg, err := testnet.RandomClustered(8, 300, 300, 3)
	if err != nil {
		t.Fatal(err)
	}
	_ = cfg
	res, err := core.KMedoids(g, core.KMedoidsOptions{K: 3, Rand: rand.New(rand.NewSource(5))})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Medoids) != 3 {
		t.Fatalf("%d medoids, want 3", len(res.Medoids))
	}
	seen := map[network.PointID]bool{}
	for _, m := range res.Medoids {
		if seen[m] {
			t.Fatalf("duplicate medoid %d", m)
		}
		seen[m] = true
	}
	if res.Iterations < 1 || res.R <= 0 {
		t.Fatalf("suspicious result: %+v", res)
	}
	// Every medoid must label itself.
	for i, m := range res.Medoids {
		if res.Labels[m] != int32(i) {
			t.Fatalf("medoid %d labelled %d, want %d", m, res.Labels[m], i)
		}
	}
	// Recomputing R from the final medoid set must reproduce res.R.
	infos := medoidInfos(t, g, res.Medoids)
	st := core.NewMedoidState(g.NumNodes())
	var stats core.Stats
	if err := core.MedoidDistFind(g, infos, st, &stats); err != nil {
		t.Fatal(err)
	}
	labels := make([]int32, g.NumPoints())
	r, err := core.AssignPoints(g, infos, st, labels, &stats)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-res.R) > 1e-6 {
		t.Fatalf("reported R = %v, recomputed %v", res.R, r)
	}
}

func TestKMedoidsRecomputeMatchesIncremental(t *testing.T) {
	// With identical randomness, the incremental and recompute drivers must
	// walk exactly the same search trajectory (Fig. 5 is a pure
	// optimization), ending at the same R.
	g, _, err := testnet.RandomClustered(21, 200, 240, 3)
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.KMedoids(g, core.KMedoidsOptions{K: 4, Rand: rand.New(rand.NewSource(9))})
	if err != nil {
		t.Fatal(err)
	}
	b, err := core.KMedoids(g, core.KMedoidsOptions{K: 4, Recompute: true, Rand: rand.New(rand.NewSource(9))})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.R-b.R) > 1e-9 {
		t.Fatalf("incremental R = %v, recompute R = %v", a.R, b.R)
	}
	if a.AttemptedSwaps != b.AttemptedSwaps || a.AcceptedSwaps != b.AcceptedSwaps {
		t.Fatalf("trajectories diverge: %+v vs %+v", a, b)
	}
	for i := range a.Medoids {
		if a.Medoids[i] != b.Medoids[i] {
			t.Fatalf("medoid %d: %d vs %d", i, a.Medoids[i], b.Medoids[i])
		}
	}
}

func TestKMedoidsRestartsPickBest(t *testing.T) {
	g, _, err := testnet.RandomClustered(31, 150, 150, 2)
	if err != nil {
		t.Fatal(err)
	}
	single, err := core.KMedoids(g, core.KMedoidsOptions{K: 2, Rand: rand.New(rand.NewSource(3))})
	if err != nil {
		t.Fatal(err)
	}
	multi, err := core.KMedoids(g, core.KMedoidsOptions{K: 2, Restarts: 5, Rand: rand.New(rand.NewSource(3))})
	if err != nil {
		t.Fatal(err)
	}
	if multi.R > single.R+1e-9 {
		t.Fatalf("5 restarts ended worse (R=%v) than 1 restart (R=%v)", multi.R, single.R)
	}
}

func TestKMedoidsParallelEqualsSerial(t *testing.T) {
	g, _, err := testnet.RandomClustered(61, 250, 300, 3)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := core.KMedoids(g, core.KMedoidsOptions{
		K: 3, Restarts: 6, Rand: rand.New(rand.NewSource(12)),
	})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := core.KMedoids(g, core.KMedoidsOptions{
		K: 3, Restarts: 6, Parallel: true, Rand: rand.New(rand.NewSource(12)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(serial.R-parallel.R) > 1e-12 {
		t.Fatalf("parallel R %v differs from serial %v", parallel.R, serial.R)
	}
	for i := range serial.Medoids {
		if serial.Medoids[i] != parallel.Medoids[i] {
			t.Fatalf("medoid %d: %d vs %d", i, serial.Medoids[i], parallel.Medoids[i])
		}
	}
	if serial.AttemptedSwaps != parallel.AttemptedSwaps || serial.Iterations != parallel.Iterations {
		t.Fatalf("work counters diverge: serial %+v parallel %+v", serial, parallel)
	}
	for p := range serial.Labels {
		if serial.Labels[p] != parallel.Labels[p] {
			t.Fatalf("label %d differs", p)
		}
	}
}

func TestKMedoidsValidation(t *testing.T) {
	g, err := testnet.Random(1, 12, 6)
	if err != nil {
		t.Fatal(err)
	}
	cases := []core.KMedoidsOptions{
		{K: 0},
		{K: 7},
		{K: 2, InitialMedoids: []network.PointID{1}},
	}
	for i, opts := range cases {
		if _, err := core.KMedoids(g, opts); err == nil {
			t.Fatalf("case %d (%+v): want error", i, opts)
		}
	}
	if _, err := core.KMedoids(g, core.KMedoidsOptions{K: 2, InitialMedoids: []network.PointID{1, 1}}); err == nil {
		t.Fatal("duplicate initial medoids: want error")
	}
}

func TestKMedoidsIdealStart(t *testing.T) {
	// Fig. 11b: seeding the medoids inside the true clusters.
	g, _, err := testnet.RandomClustered(41, 250, 200, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Use the first point of each generated cluster (tags are cluster IDs
	// and generation emits the seed point first, but IDs are re-ordered; so
	// simply pick any member of each cluster).
	var init []network.PointID
	seen := map[int32]bool{}
	for p, tag := range g.Tags() {
		if tag >= 0 && !seen[tag] {
			seen[tag] = true
			init = append(init, network.PointID(p))
		}
	}
	if len(init) != 2 {
		t.Fatalf("expected 2 cluster tags, got %d", len(init))
	}
	res, err := core.KMedoids(g, core.KMedoidsOptions{K: 2, InitialMedoids: init, Rand: rand.New(rand.NewSource(4))})
	if err != nil {
		t.Fatal(err)
	}
	if res.R <= 0 {
		t.Fatalf("bad R: %v", res.R)
	}
}

func TestKMedoidsSingleCluster(t *testing.T) {
	g, err := testnet.Random(55, 30, 20)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.KMedoids(g, core.KMedoidsOptions{K: 1, Rand: rand.New(rand.NewSource(2))})
	if err != nil {
		t.Fatal(err)
	}
	for p, l := range res.Labels {
		if l != 0 {
			t.Fatalf("point %d labelled %d under K=1", p, l)
		}
	}
	// K = 1 optimum: R must not exceed the R of any random single medoid.
	dist, err := matrix.PointDistances(g)
	if err != nil {
		t.Fatal(err)
	}
	_, _, r0, err := matrix.NearestMedoids(dist, []int{int(res.Medoids[0])})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r0-res.R) > 1e-6 {
		t.Fatalf("K=1: R=%v but matrix says %v for medoid %d", res.R, r0, res.Medoids[0])
	}
}

func TestKMedoidsAllPointsAreMedoids(t *testing.T) {
	g, err := testnet.Random(66, 15, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.KMedoids(g, core.KMedoidsOptions{K: 4, Rand: rand.New(rand.NewSource(1))})
	if err != nil {
		t.Fatal(err)
	}
	if res.R > 1e-12 {
		t.Fatalf("every point its own medoid: R = %v, want 0", res.R)
	}
}

func TestSamplePointsViaOptionsPaths(t *testing.T) {
	// Exercise both sampling branches (k <= n/2 and k > n/2) through the
	// public API.
	g, err := testnet.Random(77, 20, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{2, 8} {
		res, err := core.KMedoids(g, core.KMedoidsOptions{K: k, Rand: rand.New(rand.NewSource(6))})
		if err != nil {
			t.Fatal(err)
		}
		seen := map[network.PointID]bool{}
		for _, m := range res.Medoids {
			if seen[m] {
				t.Fatalf("k=%d: duplicate medoid", k)
			}
			seen[m] = true
		}
	}
}

func BenchmarkMedoidDistFind(b *testing.B) {
	g, _, err := testnet.RandomClustered(1, 2500, 5000, 10)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	ids := make([]network.PointID, 10)
	for i := range ids {
		ids[i] = network.PointID(rng.Intn(g.NumPoints()))
	}
	infos := make([]network.PointInfo, len(ids))
	for i, id := range ids {
		pi, err := g.PointInfo(id)
		if err != nil {
			b.Fatal(err)
		}
		infos[i] = pi
	}
	st := core.NewMedoidState(g.NumNodes())
	var stats core.Stats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := core.MedoidDistFind(g, infos, st, &stats); err != nil {
			b.Fatal(err)
		}
	}
}

func ExampleKMedoids() {
	g, _, err := testnet.RandomClustered(1, 200, 120, 2)
	if err != nil {
		panic(err)
	}
	res, err := core.KMedoids(g, core.KMedoidsOptions{K: 2, Rand: rand.New(rand.NewSource(1))})
	if err != nil {
		panic(err)
	}
	fmt.Println(len(res.Medoids), core.CountClusters(res.Labels))
	// Output: 2 2
}
