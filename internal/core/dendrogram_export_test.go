package core_test

import (
	"bytes"
	"strings"
	"testing"

	"netclus/internal/core"
	"netclus/internal/network"
	"netclus/internal/testnet"
)

// combineNoTransit joins two networks without transition edges, keeping
// their components (and dendrograms) disjoint.
func combineNoTransit(a, b *network.Network) (*network.Network, network.NodeID, error) {
	return network.Combine(a, b, nil)
}

func TestCutAt(t *testing.T) {
	g, cfg, err := testnet.RandomClustered(7, 300, 300, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.SingleLink(g, core.SingleLinkOptions{})
	if err != nil {
		t.Fatal(err)
	}
	labels, info := res.Dendrogram.CutAt(cfg.Eps(), 3)
	if len(labels) != g.NumPoints() {
		t.Fatalf("%d labels", len(labels))
	}
	if info.Clusters < 3 {
		t.Fatalf("cut found %d clusters, want >= 3", info.Clusters)
	}
	total := 0
	for i, s := range info.Sizes {
		if i > 0 && s > info.Sizes[i-1] {
			t.Fatal("sizes not descending")
		}
		total += s
	}
	if total != g.NumPoints() {
		t.Fatalf("sizes sum %d, want %d", total, g.NumPoints())
	}
	if info.Distance != cfg.Eps() {
		t.Fatal("distance not recorded")
	}
}

func TestWriteNewick(t *testing.T) {
	g, err := testnet.Random(17, 25, 20)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.SingleLink(g, core.SingleLinkOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Dendrogram.WriteNewick(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	// A connected network yields a single tree.
	if strings.Count(s, ";") != 1 {
		t.Fatalf("expected one tree, got %d", strings.Count(s, ";"))
	}
	// Every leaf appears exactly once.
	for p := 0; p < g.NumPoints(); p++ {
		if strings.Count(s, leafToken(s, p)) != 1 {
			t.Fatalf("leaf p%d count != 1 in %q", p, s)
		}
	}
	// Balanced parentheses, one merge per open paren.
	if strings.Count(s, "(") != strings.Count(s, ")") {
		t.Fatal("unbalanced parentheses")
	}
	if strings.Count(s, "(") != len(res.Dendrogram.Merges) {
		t.Fatalf("%d internal nodes, want %d merges", strings.Count(s, "("), len(res.Dendrogram.Merges))
	}
}

// leafToken builds the unambiguous search token for leaf p ("p<N>:" so p1
// does not match p10).
func leafToken(s string, p int) string {
	_ = s
	return "p" + itoa(p) + ":"
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

func TestWriteNewickForest(t *testing.T) {
	// Two disconnected populated components -> two trees.
	g, err := testnet.Line(4, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	h, err := testnet.Line(4, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	comb, _, err := combineNoTransit(g, h)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.SingleLink(comb, core.SingleLinkOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalClusters != 2 {
		t.Fatalf("expected 2 final clusters, got %d", res.FinalClusters)
	}
	var buf bytes.Buffer
	if err := res.Dendrogram.WriteNewick(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Count(buf.String(), ";") != 2 {
		t.Fatalf("expected two trees:\n%s", buf.String())
	}
}
