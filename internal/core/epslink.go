package core

import (
	"context"
	"fmt"
	"math"

	"netclus/internal/heapx"
	"netclus/internal/network"
	"netclus/internal/unionfind"
)

// EpsLinkOptions configures the ε-Link algorithm (§4.3.1).
type EpsLinkOptions struct {
	// Eps is the linking threshold: two points belong to the same cluster
	// when they are connected by a chain of points with consecutive network
	// distances at most Eps (DBSCAN with MinPts = 2).
	Eps float64
	// MinSup declares clusters with fewer members outliers (0/1 keeps all).
	MinSup int
	// Workers fans the clustering across this many goroutines (<= 1 runs the
	// sequential Fig. 6 algorithm). The parallel mode issues one ε-range
	// query per point, each worker with its own graph read view and scratch,
	// and merges the per-worker union-finds; labels are identical to the
	// sequential run.
	Workers int
}

// EpsLinkResult is the outcome of one EpsLink run.
type EpsLinkResult struct {
	// Labels holds a cluster index per point, Noise for outliers.
	Labels []int32
	// NumClusters counts clusters after min_sup suppression.
	NumClusters int
	// ClustersFound counts clusters discovered before suppression.
	ClustersFound int
	// Stats aggregates traversal work.
	Stats Stats
}

// epsEntry is a queue entry of Fig. 6: a node and its (current) distance
// from the growing cluster.
type epsEntry struct {
	node network.NodeID
	dist float64
}

// epsLinkState carries the per-run scratch of Fig. 6: the NNdist array is
// epoch-stamped so starting a new cluster costs O(1) instead of O(|V|)
// (the paper keeps one cluster at a time; outliers would otherwise pay a
// full array reset each).
type epsLinkState struct {
	ctx       context.Context
	ticks     int
	g         network.Graph
	eps       float64
	labels    []int32
	clustered []bool
	nnDist    []float64
	nnEpoch   []int32
	epoch     int32
	h         *heapx.Heap[epsEntry]
	stats     *Stats
}

func (s *epsLinkState) nnd(n network.NodeID) float64 {
	if s.nnEpoch[n] != s.epoch {
		return network.Inf
	}
	return s.nnDist[n]
}

func (s *epsLinkState) setNND(n network.NodeID, d float64) {
	s.nnEpoch[n] = s.epoch
	s.nnDist[n] = d
}

func (s *epsLinkState) push(n network.NodeID, d float64) {
	s.h.Push(epsEntry{node: n, dist: d})
	s.stats.HeapPushes++
}

// EpsLink runs the density-based ε-Link algorithm (Fig. 6) over every
// unclustered point: each run grows one cluster by traversing only the part
// of the network within ε of the cluster's points, linking points whose
// chain gaps are at most ε. Its worst-case cost is a single graph traversal
// per cluster, and in total it visits only edges that carry points or lie
// within ε of one.
func EpsLink(g network.Graph, opts EpsLinkOptions) (*EpsLinkResult, error) {
	return EpsLinkCtx(context.Background(), g, opts)
}

// EpsLinkCtx is EpsLink with cancellation: the traversal checks ctx
// periodically and returns an error wrapping ctx.Err() when it is done.
// With opts.Workers > 1 the run is fanned across that many goroutines.
func EpsLinkCtx(ctx context.Context, g network.Graph, opts EpsLinkOptions) (*EpsLinkResult, error) {
	if !(opts.Eps > 0) {
		return nil, fmt.Errorf("%w: EpsLink: Eps must be > 0 (got %v)", ErrInvalidOptions, opts.Eps)
	}
	// An explicit Workers request (>= 1) on a graph with a fused clustering
	// engine runs the kernel path; otherwise graphs with a native flat
	// Fig. 6 port run it sequentially, and everything else runs the generic
	// traversal below. All paths produce identical labels.
	if ck, ok := g.(network.ClusterKernel); ok && opts.Workers >= 1 {
		return epsLinkKernel(ctx, g, ck, opts, normWorkers(opts.Workers))
	}
	if workers := normWorkers(opts.Workers); workers > 1 {
		return epsLinkParallel(ctx, g, opts, workers)
	}
	if lk, ok := g.(network.EpsLinkKernel); ok {
		return epsLinkFlat(ctx, g, lk, opts)
	}
	n := g.NumPoints()
	res := &EpsLinkResult{Labels: make([]int32, n)}
	for i := range res.Labels {
		res.Labels[i] = Noise
	}
	st := &epsLinkState{
		ctx:       ctx,
		g:         g,
		eps:       opts.Eps,
		labels:    res.Labels,
		clustered: make([]bool, n),
		nnDist:    make([]float64, g.NumNodes()),
		nnEpoch:   make([]int32, g.NumNodes()),
		h:         heapx.New(func(a, b epsEntry) bool { return a.dist < b.dist }),
		stats:     &res.Stats,
	}
	next := int32(0)
	for p := 0; p < n; p++ {
		if st.clustered[p] {
			continue
		}
		if err := ctxCheck(ctx, &st.ticks); err != nil {
			return nil, err
		}
		if st.epoch == math.MaxInt32 {
			for i := range st.nnEpoch {
				st.nnEpoch[i] = 0
			}
			st.epoch = 0
		}
		st.epoch++
		st.h.Clear()
		if err := st.grow(network.PointID(p), next); err != nil {
			return nil, err
		}
		next++
	}
	res.ClustersFound = int(next)
	res.NumClusters = suppressAndCountDense(res.Labels, opts.MinSup, int(next))
	return res, nil
}

// grow is the ε-Link body (Fig. 6): it discovers the whole cluster of seed
// point m and labels its members with label.
func (s *epsLinkState) grow(m network.PointID, label int32) error {
	mi, err := s.g.PointInfo(m)
	if err != nil {
		return err
	}
	pg, err := s.g.Group(mi.Group)
	if err != nil {
		return err
	}
	off, err := s.g.GroupOffsets(mi.Group)
	if err != nil {
		return err
	}
	s.stats.GroupsRead++
	s.clustered[m] = true
	s.labels[m] = label
	idx := int(m - pg.First)

	// Lines 5-11: populate the seed edge in both directions, then enqueue
	// its endpoints at their distance from the last clustered point.
	last := idx
	for j := idx - 1; j >= 0; j-- {
		pid := pg.First + network.PointID(j)
		if s.clustered[pid] || off[last]-off[j] > s.eps {
			break
		}
		s.clustered[pid] = true
		s.labels[pid] = label
		last = j
	}
	if d := off[last]; d <= s.eps {
		s.push(pg.N1, d)
	}
	last = idx
	for j := idx + 1; j < len(off); j++ {
		pid := pg.First + network.PointID(j)
		if s.clustered[pid] || off[j]-off[last] > s.eps {
			break
		}
		s.clustered[pid] = true
		s.labels[pid] = label
		last = j
	}
	if d := pg.Weight - off[last]; d <= s.eps {
		s.push(pg.N2, d)
	}

	// Lines 12-37: expand the network around the cluster.
	for !s.h.Empty() {
		b := s.h.Pop()
		if b.dist >= s.nnd(b.node) {
			continue // the node's distance from the cluster has not improved
		}
		if err := ctxCheck(s.ctx, &s.ticks); err != nil {
			return err
		}
		s.setNND(b.node, b.dist)
		s.stats.NodesSettled++
		adj, err := s.g.Neighbors(b.node)
		if err != nil {
			return err
		}
		s.stats.EdgesVisited += len(adj)
		for _, nb := range adj {
			if err := s.expandEdge(b, nb, label); err != nil {
				return err
			}
		}
	}
	return nil
}

// expandEdge traverses one edge leaving the dequeued node b (lines 16-37),
// clustering reachable points on it and re-enqueueing whichever endpoints
// got closer to the cluster.
func (s *epsLinkState) expandEdge(b epsEntry, nb network.Neighbor, label int32) error {
	if nb.Group == network.NoGroup {
		// Lines 32-37 (point-free edge): the cluster can reach n_z only
		// through the full edge.
		if d := b.dist + nb.Weight; d <= s.eps && d < s.nnd(nb.Node) {
			s.push(nb.Node, d)
		}
		return nil
	}
	pg, err := s.g.Group(nb.Group)
	if err != nil {
		return err
	}
	off, err := s.g.GroupOffsets(nb.Group)
	if err != nil {
		return err
	}
	s.stats.GroupsRead++

	// Walk the points from b.node's side of the edge.
	fromN1 := b.node == pg.N1
	count := len(off)
	at := func(i int) (network.PointID, float64) { // i-th point from b.node, with d_L to b.node
		if fromN1 {
			return pg.First + network.PointID(i), off[i]
		}
		j := count - 1 - i
		return pg.First + network.PointID(j), pg.Weight - off[j]
	}

	newdB, newdNz := network.Inf, network.Inf
	pid0, dl0 := at(0)
	if !s.clustered[pid0] && dl0+b.dist <= s.eps {
		// Lines 18-27: cluster the first point, then chain while gaps stay
		// within eps.
		s.clustered[pid0] = true
		s.labels[pid0] = label
		newdB = dl0
		newdNz = pg.Weight - dl0
		prevDL := dl0
		for i := 1; i < count; i++ {
			pid, dl := at(i)
			if s.clustered[pid] || dl-prevDL > s.eps {
				break
			}
			s.clustered[pid] = true
			s.labels[pid] = label
			newdNz = pg.Weight - dl
			prevDL = dl
		}
	}
	// Lines 28-31: the cluster may now be closer to b.node than b.dist was.
	if newdB < s.nnd(b.node) {
		s.push(b.node, newdB)
	}
	// Lines 34-37: reach n_z past the clustered points (never past an
	// unclustered one: it would be farther than eps along this edge).
	if newdNz <= s.eps && newdNz < s.nnd(nb.Node) {
		s.push(nb.Node, newdNz)
	}
	return nil
}

// epsLinkParallel computes the same clustering as the sequential Fig. 6
// algorithm from its defining relation: the ε-Link clusters are the
// connected components of the graph that joins p and q when d(p, q) <= eps.
// Every point issues one ε-range query (fanned across workers, each with
// its own read view, scratch and union-find shard); the shards are merged
// and components are labelled by ascending minimum member — exactly the
// order in which the sequential run discovers clusters, so the Labels
// slice is identical.
func epsLinkParallel(ctx context.Context, g network.Graph, opts EpsLinkOptions, workers int) (*EpsLinkResult, error) {
	n := g.NumPoints()
	res := &EpsLinkResult{Labels: make([]int32, n)}
	ufs := make([]*unionfind.UF, workers)
	statsArr := make([]Stats, workers)
	err := parallelPoints(workers, n, func(w int) func(lo, hi int) error {
		view := network.ReadView(g)
		scratch := network.ScratchFor(view)
		uf := unionfind.New(n)
		ufs[w] = uf
		st := &statsArr[w]
		return func(lo, hi int) error {
			for p := lo; p < hi; p++ {
				nb, err := scratch.RangeQueryCtx(ctx, view, network.PointID(p), opts.Eps)
				if err != nil {
					return err
				}
				st.RangeQueries++
				for _, q := range nb {
					uf.Union(p, int(q))
				}
			}
			return nil
		}
	})
	if err != nil {
		return nil, err
	}
	uf := mergeUnionFinds(ufs)
	res.ClustersFound = int(labelComponents(uf, res.Labels, nil))
	for _, st := range statsArr {
		res.Stats.add(st)
	}
	res.NumClusters = suppressAndCountDense(res.Labels, opts.MinSup, res.ClustersFound)
	return res, nil
}
