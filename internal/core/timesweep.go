package core

import (
	"fmt"
	"sort"

	"netclus/internal/network"
)

// TimeWeight gives the weight of edge (u, v) at time t, from its base
// weight — the §6 time-dependent network model ("traffic on a road segment
// depends on the time of the day").
type TimeWeight func(u, v network.NodeID, base float64, t float64) float64

// TimeSweepOptions configures a time-dependent clustering sweep.
type TimeSweepOptions struct {
	// Times are the snapshot instants, in ascending order.
	Times []float64
	// Weight is the time-dependent weight function.
	Weight TimeWeight
	// Eps is the ε-Link threshold in the time-dependent metric (e.g.
	// minutes of travel time).
	Eps float64
	// MinSup suppresses clusters smaller than this per snapshot.
	MinSup int
	// MatchOverlap is the minimum overlap fraction (shared points divided
	// by the smaller cluster) for two clusters of consecutive snapshots to
	// be considered the same evolving cluster. Default 0.5.
	MatchOverlap float64
}

// Snapshot is the clustering at one instant.
type Snapshot struct {
	Time        float64
	Labels      []int32
	NumClusters int
}

// EventType classifies how a cluster evolves between snapshots.
type EventType string

const (
	// EventStable: one-to-one continuation.
	EventStable EventType = "stable"
	// EventSplit: one cluster continues as several.
	EventSplit EventType = "split"
	// EventMerge: several clusters continue as one.
	EventMerge EventType = "merge"
	// EventAppear: a cluster with no predecessor.
	EventAppear EventType = "appear"
	// EventDisappear: a cluster with no successor.
	EventDisappear EventType = "disappear"
)

// ClusterEvent is one evolution event between consecutive snapshots.
type ClusterEvent struct {
	FromTime, ToTime float64
	Type             EventType
	// From and To are the participating cluster labels in the earlier and
	// later snapshot (either may be empty for appear/disappear).
	From, To []int32
}

// TimeSweepResult is the outcome of a TimeSweep.
type TimeSweepResult struct {
	Snapshots []Snapshot
	Events    []ClusterEvent
}

// TimeSweep clusters the same objects at several instants of a
// time-dependent network and tracks how the clusters evolve — the §6
// "time-parameterized clusters". Each snapshot reweights the network with
// the bound time (point offsets scale along, so objects keep their relative
// edge positions), runs ε-Link, and consecutive snapshots are matched by
// point overlap to classify stable/split/merge/appear/disappear events.
func TimeSweep(base *network.Network, opts TimeSweepOptions) (*TimeSweepResult, error) {
	if len(opts.Times) == 0 {
		return nil, fmt.Errorf("%w: TimeSweep: Times must hold at least one instant", ErrInvalidOptions)
	}
	if opts.Weight == nil {
		return nil, fmt.Errorf("%w: TimeSweep: Weight function is required", ErrInvalidOptions)
	}
	if !(opts.Eps > 0) {
		return nil, fmt.Errorf("%w: TimeSweep: Eps must be > 0 (got %v)", ErrInvalidOptions, opts.Eps)
	}
	if opts.MatchOverlap == 0 {
		opts.MatchOverlap = 0.5
	}
	for i := 1; i < len(opts.Times); i++ {
		if opts.Times[i] <= opts.Times[i-1] {
			return nil, fmt.Errorf("%w: TimeSweep: Times must be strictly ascending (violated at index %d)", ErrInvalidOptions, i)
		}
	}

	res := &TimeSweepResult{}
	for _, t := range opts.Times {
		t := t
		snap, err := network.Reweight(base, func(u, v network.NodeID, w float64) float64 {
			return opts.Weight(u, v, w, t)
		})
		if err != nil {
			return nil, fmt.Errorf("core: reweight at t=%v: %w", t, err)
		}
		el, err := EpsLink(snap, EpsLinkOptions{Eps: opts.Eps, MinSup: opts.MinSup})
		if err != nil {
			return nil, fmt.Errorf("core: eps-link at t=%v: %w", t, err)
		}
		res.Snapshots = append(res.Snapshots, Snapshot{
			Time: t, Labels: el.Labels, NumClusters: el.NumClusters,
		})
	}
	for i := 1; i < len(res.Snapshots); i++ {
		res.Events = append(res.Events,
			matchSnapshots(res.Snapshots[i-1], res.Snapshots[i], opts.MatchOverlap)...)
	}
	return res, nil
}

// matchSnapshots links clusters of consecutive snapshots by overlap and
// classifies the evolution events.
func matchSnapshots(a, b Snapshot, minOverlap float64) []ClusterEvent {
	sizeA := map[int32]int{}
	sizeB := map[int32]int{}
	overlap := map[[2]int32]int{}
	for p := range a.Labels {
		la, lb := a.Labels[p], b.Labels[p]
		if la != Noise {
			sizeA[la]++
		}
		if lb != Noise {
			sizeB[lb]++
		}
		if la != Noise && lb != Noise {
			overlap[[2]int32{la, lb}]++
		}
	}
	succ := map[int32][]int32{}
	pred := map[int32][]int32{}
	for pair, n := range overlap {
		la, lb := pair[0], pair[1]
		smaller := sizeA[la]
		if sizeB[lb] < smaller {
			smaller = sizeB[lb]
		}
		if smaller > 0 && float64(n) >= minOverlap*float64(smaller) {
			succ[la] = append(succ[la], lb)
			pred[lb] = append(pred[lb], la)
		}
	}
	for _, s := range succ {
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	}
	for _, s := range pred {
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	}

	var events []ClusterEvent
	emit := func(typ EventType, from, to []int32) {
		events = append(events, ClusterEvent{
			FromTime: a.Time, ToTime: b.Time, Type: typ, From: from, To: to,
		})
	}
	seenB := map[int32]bool{}
	// Walk clusters of A in label order for determinism.
	labelsA := make([]int32, 0, len(sizeA))
	for la := range sizeA {
		labelsA = append(labelsA, la)
	}
	sort.Slice(labelsA, func(i, j int) bool { return labelsA[i] < labelsA[j] })
	for _, la := range labelsA {
		ss := succ[la]
		switch {
		case len(ss) == 0:
			emit(EventDisappear, []int32{la}, nil)
		case len(ss) == 1:
			lb := ss[0]
			if len(pred[lb]) > 1 {
				// handled as a merge when we reach lb below
				continue
			}
			emit(EventStable, []int32{la}, []int32{lb})
			seenB[lb] = true
		default:
			emit(EventSplit, []int32{la}, ss)
			for _, lb := range ss {
				seenB[lb] = true
			}
		}
	}
	labelsB := make([]int32, 0, len(sizeB))
	for lb := range sizeB {
		labelsB = append(labelsB, lb)
	}
	sort.Slice(labelsB, func(i, j int) bool { return labelsB[i] < labelsB[j] })
	for _, lb := range labelsB {
		ps := pred[lb]
		switch {
		case len(ps) == 0:
			emit(EventAppear, nil, []int32{lb})
		case len(ps) > 1:
			emit(EventMerge, ps, []int32{lb})
		}
	}
	return events
}
