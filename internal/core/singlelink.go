package core

import (
	"context"
	"fmt"

	"netclus/internal/heapx"
	"netclus/internal/network"
	"netclus/internal/unionfind"
)

// SingleLinkOptions configures the hierarchical algorithm of §4.4.
type SingleLinkOptions struct {
	// Delta is the scalability heuristic (§4.4.2): points on the same edge
	// at gap <= Delta are merged immediately during the initialization
	// scan, shrinking the pair heap by orders of magnitude at the price of
	// the first (analytically uninteresting) dendrogram levels. 0 disables.
	Delta float64
	// StopAtClusters stops the agglomeration when this many clusters
	// remain (0 computes the full dendrogram). Note that outliers count as
	// singleton clusters.
	StopAtClusters int
}

// SingleLinkResult is the outcome of one SingleLink run.
type SingleLinkResult struct {
	// Dendrogram is the recorded merge history.
	Dendrogram *Dendrogram
	// FinalClusters is the number of clusters remaining when the run
	// stopped (> 1 when StopAtClusters was set or the points fall in
	// disconnected network components).
	FinalClusters int
	// Stats aggregates traversal work.
	Stats Stats
}

// pairEntry is an entry of heap P: a candidate merge of the clusters
// currently containing points a and b, connected by a path of length dist.
type pairEntry struct {
	a, b network.PointID
	dist float64
}

// slEntry is an entry of heap Q: node is reachable from cluster-seed point
// owner at network distance dist.
type slEntry struct {
	node  network.NodeID
	dist  float64
	owner network.PointID
}

// SingleLink computes the single-link dendrogram of the points under the
// network distance with a single traversal of the graph, following the
// paper's two-phase Fig. 8 design:
//
// Initialization scans the point groups sequentially; every point becomes a
// singleton cluster, consecutive same-edge points become candidate pairs in
// heap P (or merge immediately under the δ heuristic), and each populated
// edge seeds heap Q with its endpoints' distances to their nearest on-edge
// cluster.
//
// Expansion then interleaves a network-Voronoi construction with merging:
// popping Q in ascending distance settles each node with its nearest cluster
// (owner) exactly once; every edge between settled nodes of different owners
// contributes a candidate pair (owner_u, owner_v, d_u + W + d_v), and every
// populated edge met during expansion contributes (owner_u, nearest on-edge
// cluster, d_u + d_L). A pair is merged from P as soon as its distance is at
// most the smallest frontier distance in Q, because every pair discovered
// later costs at least that much — so merges happen in exactly ascending
// order (Kruskal over the network-Voronoi candidate pairs, which by
// Mehlhorn's shortest-path-forest argument carries the exact single-link
// dendrogram; cross-validated against the brute-force matrix implementation
// in the tests).
//
// The paper's pseudocode paces merges with 2*Q.top instead and re-derives
// the same candidates through its hash table T; the variant here generates
// each candidate when its node settles, which keeps the pacing bound simple
// and exact also for edges that carry points (DESIGN.md, decision 4).
func SingleLink(g network.Graph, opts SingleLinkOptions) (*SingleLinkResult, error) {
	return SingleLinkCtx(context.Background(), g, opts)
}

// SingleLinkCtx is SingleLink with cancellation: the expansion checks ctx
// periodically and returns an error wrapping ctx.Err() when it is done.
func SingleLinkCtx(ctx context.Context, g network.Graph, opts SingleLinkOptions) (*SingleLinkResult, error) {
	if opts.Delta < 0 {
		return nil, fmt.Errorf("%w: SingleLink: Delta must be >= 0 (got %v)", ErrInvalidOptions, opts.Delta)
	}
	n := g.NumPoints()
	res := &SingleLinkResult{Dendrogram: &Dendrogram{NumPoints: n}}
	uf := unionfind.New(n)
	stop := opts.StopAtClusters
	if stop < 1 {
		stop = 1
	}
	if n == 0 {
		return res, nil
	}

	P := heapx.New(func(a, b pairEntry) bool { return a.dist < b.dist })
	Q := heapx.New(func(a, b slEntry) bool { return a.dist < b.dist })

	merge := func(a, b network.PointID, dist float64) bool {
		root, merged := uf.Union(int(a), int(b))
		if merged {
			res.Dendrogram.Merges = append(res.Dendrogram.Merges, MergeStep{
				A: a, B: b, Dist: dist, Size: int32(uf.Size(root)),
			})
		}
		return merged
	}

	// Phase 1 (lines 1-22): a single sequential scan of the point groups.
	err := g.ScanGroups(func(gid network.GroupID, pg network.PointGroup, offsets []float64) error {
		res.Stats.GroupsRead++
		for i := 1; i < len(offsets); i++ {
			gap := offsets[i] - offsets[i-1]
			a, b := pg.First+network.PointID(i-1), pg.First+network.PointID(i)
			if gap <= opts.Delta {
				merge(a, b, gap)
			} else {
				P.Push(pairEntry{a: a, b: b, dist: gap})
				res.Stats.HeapPushes++
			}
		}
		last := len(offsets) - 1
		Q.Push(slEntry{node: pg.N1, dist: offsets[0], owner: pg.First})
		Q.Push(slEntry{node: pg.N2, dist: pg.Weight - offsets[last], owner: pg.First + network.PointID(last)})
		res.Stats.HeapPushes += 2
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Dendrogram.PreMerges = len(res.Dendrogram.Merges)

	pushPair := func(a, b network.PointID, dist float64) {
		if uf.Find(int(a)) == uf.Find(int(b)) {
			return // already one cluster; the pair can never merge anything
		}
		P.Push(pairEntry{a: a, b: b, dist: dist})
		res.Stats.HeapPushes++
	}

	owner := make([]network.PointID, g.NumNodes())
	nnDist := make([]float64, g.NumNodes())
	settled := make([]bool, g.NumNodes())

	// Phase 2 (lines 23-44): interleaved expansion and merging.
	ticks := 0
	for uf.Sets() > stop {
		if err := ctxCheck(ctx, &ticks); err != nil {
			return nil, err
		}
		theta := network.Inf
		if !Q.Empty() {
			theta = Q.Peek().dist
		}
		for !P.Empty() && P.Peek().dist <= theta && uf.Sets() > stop {
			p := P.Pop()
			merge(p.a, p.b, p.dist)
		}
		if Q.Empty() {
			break // network exhausted; remaining clusters are disconnected
		}
		if uf.Sets() <= stop {
			break
		}
		e := Q.Pop()
		if settled[e.node] {
			continue
		}
		settled[e.node] = true
		owner[e.node] = e.owner
		nnDist[e.node] = e.dist
		res.Stats.NodesSettled++

		adj, err := g.Neighbors(e.node)
		if err != nil {
			return nil, err
		}
		res.Stats.EdgesVisited += len(adj)
		for _, nb := range adj {
			if nb.Group != network.NoGroup {
				// Populated edge: the candidate joins this node's owner to
				// the cluster of the nearest point on the edge. Expansion
				// never proceeds through a populated edge — the edge's own
				// points dominate any path crossing it.
				pg, err := g.Group(nb.Group)
				if err != nil {
					return nil, err
				}
				off, err := g.GroupOffsets(nb.Group)
				if err != nil {
					return nil, err
				}
				res.Stats.GroupsRead++
				var pid network.PointID
				var dl float64
				if e.node == pg.N1 {
					pid, dl = pg.First, off[0]
				} else {
					last := len(off) - 1
					pid, dl = pg.First+network.PointID(last), pg.Weight-off[last]
				}
				pushPair(e.owner, pid, e.dist+dl)
				continue
			}
			if settled[nb.Node] {
				if owner[nb.Node] != e.owner {
					pushPair(e.owner, owner[nb.Node], e.dist+nb.Weight+nnDist[nb.Node])
				}
				continue
			}
			Q.Push(slEntry{node: nb.Node, dist: e.dist + nb.Weight, owner: e.owner})
			res.Stats.HeapPushes++
		}
	}

	// Drain the remaining pairs in ascending order.
	for !P.Empty() && uf.Sets() > stop {
		p := P.Pop()
		merge(p.a, p.b, p.dist)
	}
	res.FinalClusters = uf.Sets()
	return res, nil
}
