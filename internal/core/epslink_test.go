package core_test

import (
	"fmt"
	"testing"

	"netclus/internal/core"
	"netclus/internal/datagen"
	"netclus/internal/evalx"
	"netclus/internal/matrix"
	"netclus/internal/testnet"
)

// samePartition asserts two labelings describe the same partition
// (label values may differ).
func samePartition(t *testing.T, want, got []int32, what string) {
	t.Helper()
	ari, err := evalx.ARI(want, got)
	if err != nil {
		t.Fatalf("%s: %v", what, err)
	}
	if ari != 1 {
		t.Fatalf("%s: partitions differ, ARI = %v\nwant %v\ngot  %v", what, ari, want, got)
	}
}

func TestEpsLinkMatchesBruteForce(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			g, err := testnet.Random(seed, 36, 50)
			if err != nil {
				t.Fatal(err)
			}
			dist, err := matrix.PointDistances(g)
			if err != nil {
				t.Fatal(err)
			}
			for _, eps := range []float64{0.3, 0.7, 1.2, 2.5, 5.0} {
				want := matrix.EpsComponents(dist, eps, 1)
				res, err := core.EpsLink(g, core.EpsLinkOptions{Eps: eps})
				if err != nil {
					t.Fatal(err)
				}
				samePartition(t, want, res.Labels, fmt.Sprintf("eps=%v", eps))
			}
		})
	}
}

func TestEpsLinkMinSup(t *testing.T) {
	g, err := testnet.Random(7, 30, 40)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := matrix.PointDistances(g)
	if err != nil {
		t.Fatal(err)
	}
	const eps = 1.0
	want := matrix.EpsComponents(dist, eps, 3)
	res, err := core.EpsLink(g, core.EpsLinkOptions{Eps: eps, MinSup: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Compare partitions with noise as singletons on both sides so that
	// outliers must agree exactly.
	samePartition(t,
		evalx.NoiseAsSingletons(want, -1),
		evalx.NoiseAsSingletons(res.Labels, core.Noise),
		"min_sup partitions")
	if res.NumClusters != evalx.NumClusters(want, -1) {
		t.Fatalf("NumClusters = %d, brute force found %d", res.NumClusters, evalx.NumClusters(want, -1))
	}
}

func TestEpsLinkDiscoversGeneratedClusters(t *testing.T) {
	g, cfg, err := testnet.RandomClustered(3, 400, 600, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.EpsLink(g, core.EpsLinkOptions{Eps: cfg.Eps(), MinSup: 3})
	if err != nil {
		t.Fatal(err)
	}
	truth := append([]int32(nil), g.Tags()...)
	ari, err := evalx.ARI(
		evalx.NoiseAsSingletons(truth, datagen.OutlierTag),
		evalx.NoiseAsSingletons(res.Labels, core.Noise))
	if err != nil {
		t.Fatal(err)
	}
	if ari < 0.9 {
		t.Fatalf("ARI vs generated ground truth = %v (< 0.9); found %d clusters, want %d",
			ari, res.NumClusters, cfg.K)
	}
}

func TestEpsLinkValidation(t *testing.T) {
	g, err := testnet.Random(1, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.EpsLink(g, core.EpsLinkOptions{Eps: 0}); err == nil {
		t.Fatal("want error for Eps = 0")
	}
	if _, err := core.EpsLink(g, core.EpsLinkOptions{Eps: -1}); err == nil {
		t.Fatal("want error for negative Eps")
	}
}

func TestEpsLinkLineChain(t *testing.T) {
	// Points every 1.0 along a line: eps >= 1 links everything, eps < 1
	// leaves every point alone.
	g, err := testnet.Line(12, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.EpsLink(g, core.EpsLinkOptions{Eps: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters != 1 {
		t.Fatalf("eps=1.0 on unit chain: %d clusters, want 1", res.NumClusters)
	}
	res, err = core.EpsLink(g, core.EpsLinkOptions{Eps: 0.99})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters != g.NumPoints() {
		t.Fatalf("eps=0.99 on unit chain: %d clusters, want %d", res.NumClusters, g.NumPoints())
	}
}
