package core_test

import (
	"fmt"
	"testing"

	"netclus/internal/core"
	"netclus/internal/datagen"
	"netclus/internal/evalx"
	"netclus/internal/matrix"
	"netclus/internal/testnet"
)

func TestDBSCANMinPts2EqualsEpsLink(t *testing.T) {
	// §4.3: ε-Link is DBSCAN specialized to MinPts = 2 (no border-point
	// ambiguity there), so the partitions must coincide exactly.
	for seed := int64(1); seed <= 8; seed++ {
		g, err := testnet.Random(seed, 40, 70)
		if err != nil {
			t.Fatal(err)
		}
		for _, eps := range []float64{0.5, 1.0, 2.0} {
			db, err := core.DBSCAN(g, core.DBSCANOptions{Eps: eps, MinPts: 2})
			if err != nil {
				t.Fatal(err)
			}
			el, err := core.EpsLink(g, core.EpsLinkOptions{Eps: eps, MinSup: 2})
			if err != nil {
				t.Fatal(err)
			}
			samePartition(t,
				evalx.NoiseAsSingletons(db.Labels, core.Noise),
				evalx.NoiseAsSingletons(el.Labels, core.Noise),
				fmt.Sprintf("seed %d eps %v", seed, eps))
		}
	}
}

func TestDBSCANMatchesMatrixDBSCAN(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		g, err := testnet.Random(seed+40, 36, 60)
		if err != nil {
			t.Fatal(err)
		}
		dist, err := matrix.PointDistances(g)
		if err != nil {
			t.Fatal(err)
		}
		for _, minPts := range []int{2, 3, 4} {
			const eps = 1.0
			got, err := core.DBSCAN(g, core.DBSCANOptions{Eps: eps, MinPts: minPts})
			if err != nil {
				t.Fatal(err)
			}
			want := matrix.DBSCAN(dist, eps, minPts)

			// Noise is order-independent and must agree exactly; border
			// points may legally land in either adjacent cluster, so the
			// partition comparison is restricted to core points.
			nCore := 0
			for p := range want {
				coreWant := countWithin(dist, p, eps) >= minPts
				if coreWant != got.Core[p] {
					t.Fatalf("seed %d minPts %d: point %d core flag %v, want %v",
						seed, minPts, p, got.Core[p], coreWant)
				}
				if (want[p] == -1) != (got.Labels[p] == core.Noise) {
					t.Fatalf("seed %d minPts %d: point %d noise mismatch (got %d, want %d)",
						seed, minPts, p, got.Labels[p], want[p])
				}
				if coreWant {
					nCore++
				}
			}
			var wc, gc []int32
			for p := range want {
				if got.Core[p] {
					wc = append(wc, want[p])
					gc = append(gc, got.Labels[p])
				}
			}
			if nCore > 0 {
				samePartition(t, wc, gc, fmt.Sprintf("seed %d minPts %d core partition", seed, minPts))
			}
			if got.NumClusters != evalx.NumClusters(want, -1) {
				t.Fatalf("seed %d minPts %d: %d clusters, matrix found %d",
					seed, minPts, got.NumClusters, evalx.NumClusters(want, -1))
			}
		}
	}
}

func countWithin(dist [][]float64, p int, eps float64) int {
	n := 0
	for q := range dist[p] {
		if dist[p][q] <= eps {
			n++
		}
	}
	return n
}

func TestDBSCANDiscoversGeneratedClusters(t *testing.T) {
	g, cfg, err := testnet.RandomClustered(5, 400, 600, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.DBSCAN(g, core.DBSCANOptions{Eps: cfg.Eps(), MinPts: 3})
	if err != nil {
		t.Fatal(err)
	}
	truth := append([]int32(nil), g.Tags()...)
	ari, err := evalx.ARI(
		evalx.NoiseAsSingletons(truth, datagen.OutlierTag),
		evalx.NoiseAsSingletons(res.Labels, core.Noise))
	if err != nil {
		t.Fatal(err)
	}
	if ari < 0.9 {
		t.Fatalf("ARI = %v (< 0.9), %d clusters for k = %d", ari, res.NumClusters, cfg.K)
	}
}

func TestDBSCANValidation(t *testing.T) {
	g, err := testnet.Random(1, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.DBSCAN(g, core.DBSCANOptions{Eps: 0, MinPts: 2}); err == nil {
		t.Fatal("want error for Eps = 0")
	}
	if _, err := core.DBSCAN(g, core.DBSCANOptions{Eps: 1, MinPts: 0}); err == nil {
		t.Fatal("want error for MinPts = 0")
	}
}

func TestDBSCANAllNoise(t *testing.T) {
	// Far-apart points with a high density requirement: everything is noise.
	g, err := testnet.Line(30, 5.0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.DBSCAN(g, core.DBSCANOptions{Eps: 0.5, MinPts: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters != 0 || res.CorePoints != 0 {
		t.Fatalf("expected all noise, got %+v", res)
	}
	for p, l := range res.Labels {
		if l != core.Noise {
			t.Fatalf("point %d labelled %d", p, l)
		}
	}
}
