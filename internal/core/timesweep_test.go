package core_test

import (
	"testing"

	"netclus/internal/core"
	"netclus/internal/network"
)

// rushHourNet builds a line of three point-runs A - B - C where the A-B and
// B-C connector roads slow down at rush hour: off-peak everything is one
// cluster, at rush hour it splits into three.
func rushHourNet(t *testing.T) *network.Network {
	t.Helper()
	b := network.NewBuilder()
	const nNodes = 31
	for i := 0; i < nNodes; i++ {
		b.AddNode(network.Coord{X: float64(i)})
	}
	for i := 0; i+1 < nNodes; i++ {
		b.AddEdge(network.NodeID(i), network.NodeID(i+1), 1)
	}
	place := func(lo, hi float64, tag int32) {
		for x := lo; x <= hi; x += 0.4 {
			e := int(x)
			b.AddPoint(network.NodeID(e), network.NodeID(e+1), x-float64(e), tag)
		}
	}
	place(2, 6, 0)   // run A
	place(12, 16, 1) // run B
	place(22, 26, 2) // run C
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// connector reports whether edge (u,v) lies on one of the A-B / B-C gaps.
func connector(u, v network.NodeID) bool {
	lo := u
	if v < lo {
		lo = v
	}
	return (lo >= 6 && lo < 12) || (lo >= 16 && lo < 22)
}

func TestTimeSweepSplitAndMerge(t *testing.T) {
	n := rushHourNet(t)
	res, err := core.TimeSweep(n, core.TimeSweepOptions{
		Times: []float64{4, 8, 20}, // night, rush hour, evening
		Weight: func(u, v network.NodeID, base, tm float64) float64 {
			if tm >= 7 && tm <= 10 && connector(u, v) {
				return base * 5
			}
			return base
		},
		Eps:    7, // gaps are 6 off-peak, 30 at rush hour
		MinSup: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Snapshots) != 3 {
		t.Fatalf("%d snapshots", len(res.Snapshots))
	}
	if got := []int{res.Snapshots[0].NumClusters, res.Snapshots[1].NumClusters, res.Snapshots[2].NumClusters}; got[0] != 1 || got[1] != 3 || got[2] != 1 {
		t.Fatalf("cluster counts %v, want [1 3 1]", got)
	}
	var sawSplit, sawMerge bool
	for _, e := range res.Events {
		switch e.Type {
		case core.EventSplit:
			sawSplit = true
			if e.FromTime != 4 || e.ToTime != 8 || len(e.To) != 3 {
				t.Fatalf("bad split event %+v", e)
			}
		case core.EventMerge:
			sawMerge = true
			if e.FromTime != 8 || e.ToTime != 20 || len(e.From) != 3 {
				t.Fatalf("bad merge event %+v", e)
			}
		}
	}
	if !sawSplit || !sawMerge {
		t.Fatalf("events %v: want one split and one merge", res.Events)
	}
}

func TestTimeSweepStableAndValidation(t *testing.T) {
	n := rushHourNet(t)
	flat := func(u, v network.NodeID, base, tm float64) float64 { return base }
	res, err := core.TimeSweep(n, core.TimeSweepOptions{
		Times: []float64{1, 2}, Weight: flat, Eps: 7, MinSup: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Events) != 1 || res.Events[0].Type != core.EventStable {
		t.Fatalf("constant weights: events %v, want one stable", res.Events)
	}

	bad := []core.TimeSweepOptions{
		{Weight: flat, Eps: 1},                         // no times
		{Times: []float64{1}, Eps: 1},                  // no weight
		{Times: []float64{1}, Weight: flat},            // no eps
		{Times: []float64{2, 1}, Weight: flat, Eps: 1}, // unordered
		{Times: []float64{1, 1}, Weight: flat, Eps: 1}, // duplicate
	}
	for i, o := range bad {
		if _, err := core.TimeSweep(n, o); err == nil {
			t.Fatalf("case %d: want validation error", i)
		}
	}
}

func TestTimeSweepDisappearAndAppear(t *testing.T) {
	// At rush hour an entire run becomes unreachable-by-eps internally:
	// scale ALL edges so the within-run gaps exceed eps and every point is
	// a singleton -> suppressed -> clusters disappear; they reappear after.
	n := rushHourNet(t)
	res, err := core.TimeSweep(n, core.TimeSweepOptions{
		Times: []float64{4, 8, 20},
		Weight: func(u, v network.NodeID, base, tm float64) float64 {
			if tm >= 7 && tm <= 10 {
				return base * 100
			}
			return base
		},
		Eps:    7,
		MinSup: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Snapshots[1].NumClusters != 0 {
		t.Fatalf("rush hour should dissolve all clusters, got %d", res.Snapshots[1].NumClusters)
	}
	var sawDisappear, sawAppear bool
	for _, e := range res.Events {
		if e.Type == core.EventDisappear && e.FromTime == 4 {
			sawDisappear = true
		}
		if e.Type == core.EventAppear && e.ToTime == 20 {
			sawAppear = true
		}
	}
	if !sawDisappear || !sawAppear {
		t.Fatalf("events %v: want disappear then appear", res.Events)
	}
}
