package core

import (
	"bufio"
	"fmt"
	"io"
	"sort"

	"netclus/internal/network"
)

// CutInfo summarizes one dendrogram cut: the number of clusters, their size
// distribution and how many points sit in clusters below minSup.
type CutInfo struct {
	Distance    float64
	Clusters    int
	Sizes       []int // descending
	SmallPoints int   // points in clusters smaller than minSup
}

// CutAt labels the partition at distance t and summarizes it.
func (d *Dendrogram) CutAt(t float64, minSup int) ([]int32, CutInfo) {
	labels := d.LabelsAtDistance(t)
	info := CutInfo{Distance: t}
	counts := map[int32]int{}
	for _, l := range labels {
		counts[l]++
	}
	info.Clusters = len(counts)
	for _, n := range counts {
		info.Sizes = append(info.Sizes, n)
		if n < minSup {
			info.SmallPoints += n
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(info.Sizes)))
	return labels, info
}

// WriteNewick serializes the dendrogram in Newick tree format with branch
// lengths derived from merge heights (leaf branch length = height of the
// leaf's first merge; internal branch length = parent height - own height).
// Leaves are named p<PointID>. Disconnected forests serialize each root as
// its own tree, one per line. The format round-trips into any standard
// dendrogram/phylogeny viewer.
func (d *Dendrogram) WriteNewick(w io.Writer) error {
	bw := bufio.NewWriter(w)

	type node struct {
		left, right int // node indices; -1 = absent
		point       network.PointID
		height      float64
	}
	// Leaves first, then one internal node per merge.
	nodes := make([]node, d.NumPoints, d.NumPoints+len(d.Merges))
	for p := range nodes {
		nodes[p] = node{left: -1, right: -1, point: network.PointID(p)}
	}
	// current maps a union-find-free view: representative point -> node.
	current := make(map[network.PointID]int, d.NumPoints)
	parent := make([]int32, d.NumPoints)
	for p := 0; p < d.NumPoints; p++ {
		current[network.PointID(p)] = p
		parent[p] = int32(p)
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, m := range d.Merges {
		ra, rb := find(int32(m.A)), find(int32(m.B))
		na, nb := current[network.PointID(ra)], current[network.PointID(rb)]
		nodes = append(nodes, node{left: na, right: nb, point: -1, height: m.Dist})
		parent[rb] = ra
		current[network.PointID(ra)] = len(nodes) - 1
		delete(current, network.PointID(rb))
	}

	var write func(i int, parentHeight float64) error
	write = func(i int, parentHeight float64) error {
		n := nodes[i]
		if n.left < 0 {
			_, err := fmt.Fprintf(bw, "p%d:%g", n.point, parentHeight)
			return err
		}
		if _, err := bw.WriteString("("); err != nil {
			return err
		}
		if err := write(n.left, n.height); err != nil {
			return err
		}
		if _, err := bw.WriteString(","); err != nil {
			return err
		}
		if err := write(n.right, n.height); err != nil {
			return err
		}
		branch := parentHeight - n.height
		if branch < 0 {
			branch = 0 // δ pre-merges are unordered; clamp
		}
		_, err := fmt.Fprintf(bw, "):%g", branch)
		return err
	}

	// Roots in deterministic order.
	var roots []int
	for _, idx := range current {
		roots = append(roots, idx)
	}
	sort.Ints(roots)
	for _, r := range roots {
		if err := write(r, nodes[r].height); err != nil {
			return err
		}
		if _, err := bw.WriteString(";\n"); err != nil {
			return err
		}
	}
	return bw.Flush()
}
