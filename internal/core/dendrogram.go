package core

import (
	"math"

	"netclus/internal/network"
	"netclus/internal/unionfind"
)

// MergeStep is one agglomeration of the Single-Link dendrogram: the clusters
// represented by points A and B (their union-find roots at merge time) were
// joined at network distance Dist, producing a cluster of Size points.
type MergeStep struct {
	A, B network.PointID
	Dist float64
	Size int32
}

// Dendrogram records the merge history of a hierarchical clustering over
// NumPoints initial singleton clusters. Merges appear in merge order; when
// the δ scalability heuristic is active, the leading pre-merges (all with
// Dist <= δ) are unordered among themselves, and every later merge is in
// ascending distance order. Cutting below δ is therefore not meaningful —
// exactly the detail the paper trades away for heap size (§4.4.2).
type Dendrogram struct {
	NumPoints int
	// PreMerges counts the leading δ-heuristic merges.
	PreMerges int
	Merges    []MergeStep
}

// MergeDistances returns the distance of every merge, in merge order.
func (d *Dendrogram) MergeDistances() []float64 {
	out := make([]float64, len(d.Merges))
	for i, m := range d.Merges {
		out[i] = m.Dist
	}
	return out
}

// LastMergeDistances returns the distances of the final n merges (Figure 15
// plots the last 49). Fewer are returned when the dendrogram is shorter.
func (d *Dendrogram) LastMergeDistances(n int) []float64 {
	all := d.MergeDistances()
	if n >= len(all) {
		return all
	}
	return all[len(all)-n:]
}

// replay applies merges while keep returns true and labels the resulting
// partition 0..C-1.
func (d *Dendrogram) replay(keep func(i int, m MergeStep) bool) []int32 {
	uf := unionfind.New(d.NumPoints)
	for i, m := range d.Merges {
		if !keep(i, m) {
			break
		}
		uf.Union(int(m.A), int(m.B))
	}
	labels := make([]int32, d.NumPoints)
	next := int32(0)
	byRoot := make(map[int]int32)
	for p := 0; p < d.NumPoints; p++ {
		r := uf.Find(p)
		l, ok := byRoot[r]
		if !ok {
			l = next
			next++
			byRoot[r] = l
		}
		labels[p] = l
	}
	return labels
}

// LabelsAtDistance cuts the dendrogram at distance t: every merge with
// Dist <= t is applied. A Single-Link run cut at t equals ε-Link with ε = t
// (§5.1's closing observation); pair it with SuppressSmallClusters for the
// min_sup analogue.
func (d *Dendrogram) LabelsAtDistance(t float64) []int32 {
	return d.replay(func(i int, m MergeStep) bool {
		// Pre-merges are all <= δ <= any meaningful cut; later merges
		// ascend, so stopping at the first larger one is exact.
		return i < d.PreMerges || m.Dist <= t
	})
}

// LabelsAtCount cuts the dendrogram where k clusters remain (or where the
// merge history ends, whichever comes first).
func (d *Dendrogram) LabelsAtCount(k int) []int32 {
	limit := d.NumPoints - k
	if limit < 0 {
		limit = 0
	}
	return d.replay(func(i int, m MergeStep) bool { return i < limit })
}

// InterestingLevel marks a §5.3 "interesting" clustering level: merge index
// Index (the merge whose distance jumped) and the jump ratio against the
// running average of the preceding window's distance deltas.
type InterestingLevel struct {
	Index int
	Dist  float64
	Ratio float64
}

// InterestingLevels implements the paper's §5.3 heuristic: maintain the
// average d_avg of the distance deltas of the last window merges; whenever
// the next delta exceeds factor * d_avg, hint that the clustering just
// before that merge is an interesting level. Multiple levels of different
// resolution are reported in merge order. The scan starts after the δ
// pre-merges, whose ordering (and therefore deltas) carries no structure.
func (d *Dendrogram) InterestingLevels(window int, factor float64) []InterestingLevel {
	if window < 1 {
		window = 8
	}
	if factor <= 1 {
		factor = 3
	}
	dists := d.MergeDistances()
	if len(dists) < 2 {
		return nil
	}
	var levels []InterestingLevel
	deltas := make([]float64, 0, window)
	sum := 0.0
	start := d.PreMerges + 1
	if start < 1 {
		start = 1
	}
	for i := start; i < len(dists); i++ {
		delta := dists[i] - dists[i-1]
		if len(deltas) == window {
			avg := sum / float64(window)
			switch {
			case avg > 0 && delta > factor*avg && delta > 1e-9*dists[i-1]:
				levels = append(levels, InterestingLevel{Index: i, Dist: dists[i], Ratio: delta / avg})
			case avg <= 0 && delta > 1e-9*dists[i-1]:
				// A positive jump after a plateau of identical merge
				// distances is maximally significant (the relative floor
				// ignores float round-off between tied distances).
				levels = append(levels, InterestingLevel{Index: i, Dist: dists[i], Ratio: math.Inf(1)})
			}
		}
		if len(deltas) == window {
			sum -= deltas[0]
			deltas = deltas[1:]
		}
		deltas = append(deltas, delta)
		sum += delta
	}
	return levels
}
