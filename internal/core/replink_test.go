package core_test

import (
	"fmt"
	"math"
	"testing"

	"netclus/internal/core"
	"netclus/internal/datagen"
	"netclus/internal/evalx"
	"netclus/internal/matrix"
	"netclus/internal/testnet"
)

func TestRepLinkExactMatchesMatrix(t *testing.T) {
	for _, tc := range []struct {
		name    string
		linkage core.Linkage
		brute   matrix.Linkage
	}{
		{"complete", core.CompleteLinkage, matrix.CompleteLinkage},
		{"average", core.AverageLinkage, matrix.AverageLinkage},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			for seed := int64(1); seed <= 6; seed++ {
				g, err := testnet.Random(seed+90, 20, 22)
				if err != nil {
					t.Fatal(err)
				}
				dist, err := matrix.PointDistances(g)
				if err != nil {
					t.Fatal(err)
				}
				want, err := matrix.Agglomerative(dist, tc.brute)
				if err != nil {
					t.Fatal(err)
				}
				got, err := core.RepLink(g, core.RepLinkOptions{Linkage: tc.linkage})
				if err != nil {
					t.Fatal(err)
				}
				if len(got.Dendrogram.Merges) != len(want) {
					t.Fatalf("seed %d: %d merges, want %d", seed, len(got.Dendrogram.Merges), len(want))
				}
				for i := range want {
					if math.Abs(got.Dendrogram.Merges[i].Dist-want[i].Dist) > 1e-9 {
						t.Fatalf("seed %d merge %d: %v, want %v",
							seed, i, got.Dendrogram.Merges[i].Dist, want[i].Dist)
					}
				}
				if got.FinalClusters != 1 {
					t.Fatalf("seed %d: %d final clusters", seed, got.FinalClusters)
				}
			}
		})
	}
}

func TestRepLinkPartitionsMatchMatrixAtCuts(t *testing.T) {
	g, err := testnet.Random(123, 18, 18)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := matrix.PointDistances(g)
	if err != nil {
		t.Fatal(err)
	}
	want, err := matrix.Agglomerative(dist, matrix.CompleteLinkage)
	if err != nil {
		t.Fatal(err)
	}
	got, err := core.RepLink(g, core.RepLinkOptions{Linkage: core.CompleteLinkage})
	if err != nil {
		t.Fatal(err)
	}
	// Compare partitions after the same number of merges.
	for _, k := range []int{3, 6, 12} {
		gotLabels := got.Dendrogram.LabelsAtCount(k)
		wantLabels := bruteLabelsAtCount(want, g.NumPoints(), k)
		samePartition(t, wantLabels, gotLabels, fmt.Sprintf("cut at %d clusters", k))
	}
}

func bruteLabelsAtCount(merges []matrix.Merge, n, k int) []int32 {
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	limit := n - k
	if limit > len(merges) {
		limit = len(merges)
	}
	for _, m := range merges[:limit] {
		parent[find(m.A)] = find(m.B)
	}
	labels := make([]int32, n)
	byRoot := map[int]int32{}
	next := int32(0)
	for i := range labels {
		r := find(i)
		l, ok := byRoot[r]
		if !ok {
			l = next
			next++
			byRoot[r] = l
		}
		labels[i] = l
	}
	return labels
}

func TestRepLinkWithRepresentativesAndPrePhase(t *testing.T) {
	g, cfg, err := testnet.RandomClustered(33, 400, 400, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.RepLink(g, core.RepLinkOptions{
		Linkage:        core.CompleteLinkage,
		MaxReps:        4,
		PreEps:         cfg.Eps(),
		StopAtClusters: 8, // 4 clusters + a few outlier groups
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalClusters > 8 {
		t.Fatalf("stopped at %d clusters", res.FinalClusters)
	}
	labels := core.SuppressSmallClusters(res.Dendrogram.LabelsAtCount(8), 3)
	truth := append([]int32(nil), g.Tags()...)
	ari, err := evalx.ARI(
		evalx.NoiseAsSingletons(truth, datagen.OutlierTag),
		evalx.NoiseAsSingletons(labels, core.Noise))
	if err != nil {
		t.Fatal(err)
	}
	if ari < 0.85 {
		t.Fatalf("RepLink approximation ARI %v < 0.85", ari)
	}
	// The pre-phase must have collapsed most of the work: far fewer
	// distance calls than the quadratic 400^2/2.
	if res.DistanceCalls > 400*400/4 {
		t.Fatalf("%d distance calls: pre-phase not effective", res.DistanceCalls)
	}
}

func TestRepLinkValidationAndEdgeCases(t *testing.T) {
	g, err := testnet.Random(3, 12, 6)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.RepLink(g, core.RepLinkOptions{MaxReps: -1}); err == nil {
		t.Fatal("want error for negative MaxReps")
	}
	if _, err := core.RepLink(g, core.RepLinkOptions{PreEps: -1}); err == nil {
		t.Fatal("want error for negative PreEps")
	}
	// Empty network.
	empty, err := testnet.Random(4, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.RepLink(empty, core.RepLinkOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Dendrogram.Merges) != 0 {
		t.Fatal("empty network produced merges")
	}
	// StopAtClusters respected.
	res, err = core.RepLink(g, core.RepLinkOptions{StopAtClusters: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalClusters != 4 {
		t.Fatalf("stopped at %d, want 4", res.FinalClusters)
	}
}
