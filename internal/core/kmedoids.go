package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"netclus/internal/heapx"
	"netclus/internal/network"
)

// MedoidState holds, for every network node, the index of its nearest medoid
// (in the current medoid set) and the network distance to it — the output of
// the Fig. 4 concurrent expansion, updated in place by the Fig. 5 incremental
// replacement. Unreachable/unassigned nodes have Med -1 and Dist +Inf.
type MedoidState struct {
	Med  []int32
	Dist []float64

	// affected and seeds are scratch for the incremental update, kept on
	// the state so the once-per-attempted-swap call rate allocates nothing
	// in steady state. Never retained past a call.
	affected []network.NodeID
	seeds    []network.MedoidSeed
}

// NewMedoidState returns a state for a graph with n nodes, all unassigned.
func NewMedoidState(n int) *MedoidState {
	s := &MedoidState{Med: make([]int32, n), Dist: make([]float64, n)}
	s.Reset()
	return s
}

// Reset unassigns every node.
func (s *MedoidState) Reset() {
	for i := range s.Med {
		s.Med[i] = -1
		s.Dist[i] = network.Inf
	}
}

// CopyFrom overwrites s with o (same length required).
func (s *MedoidState) CopyFrom(o *MedoidState) {
	copy(s.Med, o.Med)
	copy(s.Dist, o.Dist)
}

// medEntry is a queue entry B of Figs. 4-5: node, medoid index, distance.
type medEntry struct {
	node network.NodeID
	med  int32
	dist float64
}

// lessMedEntry orders the expansion frontier by the explicit lexicographic
// (dist, med, node) key. Distance alone decides almost every pop; the med
// component makes the winning medoid of exactly equidistant nodes the
// lowest slot index, and the node component makes the order total. Any
// label-correcting schedule that accepts lexicographic (dist, med)
// improvements converges to the same assignment (DESIGN.md §10), which is
// the contract the CSR Δ-stepping kernel is proven against.
func lessMedEntry(a, b medEntry) bool {
	if a.dist != b.dist {
		return a.dist < b.dist
	}
	if a.med != b.med {
		return a.med < b.med
	}
	return a.node < b.node
}

// MedoidDistFind implements Fig. 4: a concurrent (multi-source) Dijkstra
// expansion from all medoids that tags every node with its nearest medoid
// and distance. The state is fully recomputed.
func MedoidDistFind(g network.Graph, medoids []network.PointInfo, st *MedoidState, stats *Stats) error {
	return medoidDistFindCtx(context.Background(), g, medoids, st, stats, nil)
}

func medoidDistFindCtx(ctx context.Context, g network.Graph, medoids []network.PointInfo, st *MedoidState, stats *Stats, mp *medoidPruner) error {
	st.Reset()
	seeds := make([]network.MedoidSeed, 0, 2*len(medoids))
	for i, m := range medoids {
		seeds = append(seeds,
			network.MedoidSeed{Node: m.N1, Med: int32(i), Dist: m.Pos},
			network.MedoidSeed{Node: m.N2, Med: int32(i), Dist: m.Weight - m.Pos})
		stats.HeapPushes += 2
	}
	return runExpansion(ctx, g, seeds, st, stats, mp)
}

// IncMedoidUpdate implements Fig. 5: after medoid slot replacedIdx has been
// replaced (medoids is the new set, already holding the new medoid in that
// slot), nodes of the old medoid's cluster are unassigned and re-expanded
// from (a) the frontier of the surviving clusters, (b) the new medoid and
// (c) the direct edge-endpoint seeds of every surviving medoid, touching only
// the part of the network whose nearest medoid can have changed. st must
// hold a consistent assignment for the previous medoid set.
//
// Seed source (c) is a correction to the paper's pseudocode: when a
// surviving medoid's own edge endpoint was assigned to the replaced medoid,
// the endpoint's direct d_L connection to that medoid is not reachable
// through any neighbouring node's retained distance, so Fig. 5's two seed
// sources alone under-estimate it. Re-pushing the (cheap, 2k) Fig. 4 seeds
// restores exactness; they are skipped unless they improve a node.
func IncMedoidUpdate(g network.Graph, medoids []network.PointInfo, replacedIdx int, st *MedoidState, stats *Stats) error {
	return incMedoidUpdateCtx(context.Background(), g, medoids, replacedIdx, st, stats, nil)
}

func incMedoidUpdateCtx(ctx context.Context, g network.Graph, medoids []network.PointInfo, replacedIdx int, st *MedoidState, stats *Stats, mp *medoidPruner) error {
	seeds := st.seeds[:0]

	// Unassign the replaced medoid's cluster.
	affected := st.affected[:0]
	for n := range st.Med {
		if st.Med[n] == int32(replacedIdx) {
			affected = append(affected, network.NodeID(n))
			st.Med[n] = -1
			st.Dist[n] = network.Inf
		}
	}
	// Seed from neighbours that still belong to some surviving medoid.
	for _, ni := range affected {
		adj, err := g.Neighbors(ni)
		if err != nil {
			return err
		}
		stats.EdgesVisited += len(adj)
		for _, nb := range adj {
			if st.Med[nb.Node] >= 0 {
				seeds = append(seeds, network.MedoidSeed{Node: ni, Med: st.Med[nb.Node], Dist: st.Dist[nb.Node] + nb.Weight})
				stats.HeapPushes++
			}
		}
	}
	// Seed every medoid's edge endpoints (the new medoid's seeds are what
	// Fig. 5 prescribes; the survivors' are the pseudocode correction).
	for i, m := range medoids {
		seeds = append(seeds,
			network.MedoidSeed{Node: m.N1, Med: int32(i), Dist: m.Pos},
			network.MedoidSeed{Node: m.N2, Med: int32(i), Dist: m.Weight - m.Pos})
		stats.HeapPushes += 2
	}
	st.affected, st.seeds = affected, seeds

	return runExpansion(ctx, g, seeds, st, stats, mp)
}

// runExpansion dispatches the seeded concurrent expansion: graphs with a
// native expansion kernel (the compiled CSR snapshot) run it directly when
// pruning is off — kernel and generic loop converge to the same
// (dist, med, node) lexicographic fixpoint, so the assignment is
// bit-identical — otherwise the generic heap loop runs.
func runExpansion(ctx context.Context, g network.Graph, seeds []network.MedoidSeed, st *MedoidState, stats *Stats, mp *medoidPruner) error {
	if ne, ok := g.(network.NearestExpander); ok && mp == nil {
		c, err := ne.ExpandNearest(ctx, seeds, st.Med, st.Dist)
		stats.NodesSettled += c.Settled
		stats.HeapPushes += c.Pushes
		stats.EdgesVisited += c.Edges
		return err
	}
	h := heapx.New(lessMedEntry)
	for _, s := range seeds {
		h.Push(medEntry{node: s.Node, med: s.Med, dist: s.Dist})
	}
	return concurrentExpansion(ctx, g, h, st, stats, mp)
}

// medoidPruner suppresses expansion frontier pushes that can never win: a
// push at distance nd to node v is dead weight when nd already exceeds an
// upper bound on v's distance to its nearest medoid, because v's final
// assignment is provably closer. Along the multi-source shortest-path tree
// every push carries exactly the target node's final distance, which is
// never above the upper bound, so pruned expansions settle every node at the
// same distance as unpruned ones (see DESIGN.md, Lower-bound pruning).
// Upper bounds are memoized per node with an epoch stamp; retarget
// invalidates the memo when the medoid set changes.
type medoidPruner struct {
	b     network.Bounder
	tb    network.TargetBounder
	memo  []float64
	stamp []int32
	epoch int32
}

func newMedoidPruner(b network.Bounder, numNodes int) *medoidPruner {
	return &medoidPruner{b: b, memo: make([]float64, numNodes), stamp: make([]int32, numNodes)}
}

// retarget rebinds the pruner to the current medoid set.
func (mp *medoidPruner) retarget(medoids []network.PointInfo) {
	if mp.epoch == math.MaxInt32 {
		for i := range mp.stamp {
			mp.stamp[i] = 0
		}
		mp.epoch = 0
	}
	mp.epoch++
	mp.tb = mp.b.TargetBounds(medoids)
}

func (mp *medoidPruner) upper(v network.NodeID) float64 {
	if mp.stamp[v] == mp.epoch {
		return mp.memo[v]
	}
	u := mp.tb.Upper(v)
	mp.stamp[v] = mp.epoch
	mp.memo[v] = u
	return u
}

// concurrentExpansion is the shared Concurrent_Expansion of Figs. 4-5. The
// acceptance test — does (B.dist, B.med) lexicographically improve the
// node's (Dist, Med)? — subsumes both variants: with a reset state it is
// Fig. 4's "not assigned" check, and on a partially retained state it is
// Fig. 5's "can this node get closer" check. The med half of the key only
// matters at exact distance ties, where it awards the node to the lowest
// medoid slot; because positive edge weights make the key strictly increase
// along every path, the loop settles each node at the unique lexicographic
// fixpoint whatever the pop order (DESIGN.md §10). A non-nil mp prunes
// pushes whose distance exceeds the target node's upper bound to the
// nearest medoid without changing any settled distance or label: the
// winning push of a node carries exactly its final distance, which is never
// above the upper bound.
func concurrentExpansion(ctx context.Context, g network.Graph, h *heapx.Heap[medEntry], st *MedoidState, stats *Stats, mp *medoidPruner) error {
	ticks := 0
	for !h.Empty() {
		b := h.Pop()
		if b.dist > st.Dist[b.node] || (b.dist == st.Dist[b.node] && b.med >= st.Med[b.node]) {
			continue
		}
		if err := ctxCheck(ctx, &ticks); err != nil {
			return err
		}
		st.Med[b.node] = b.med
		st.Dist[b.node] = b.dist
		stats.NodesSettled++
		adj, err := g.Neighbors(b.node)
		if err != nil {
			return err
		}
		stats.EdgesVisited += len(adj)
		for _, nb := range adj {
			nd := b.dist + nb.Weight
			if nd > st.Dist[nb.Node] || (nd == st.Dist[nb.Node] && b.med >= st.Med[nb.Node]) {
				continue
			}
			if mp != nil && nd > mp.upper(nb.Node) {
				stats.Prune.PrunedPushes++
				continue
			}
			h.Push(medEntry{node: nb.Node, med: b.med, dist: nd})
			stats.HeapPushes++
		}
	}
	return nil
}

// AssignPoints assigns every point to its nearest medoid using Equation 1:
// the best of (i) via its edge's endpoints using the node assignment in st
// and (ii) directly along its own edge when a medoid shares the edge. It
// fills labels (length NumPoints; Noise for points unreachable from every
// medoid) and returns the evaluation function R = Σ d(p, m_p). The scan is a
// single sequential pass over the point groups; R accumulates per group
// first and then across groups in ascending order, the association the
// DeltaAssigner kernel contract pins so a partially-rescanned assignment
// reproduces the full-scan value bit for bit.
func AssignPoints(g network.Graph, medoids []network.PointInfo, st *MedoidState, labels []int32, stats *Stats) (r float64, err error) {
	if len(labels) != g.NumPoints() {
		return 0, fmt.Errorf("core: labels slice has %d entries for %d points", len(labels), g.NumPoints())
	}
	// Graphs with a native assignment scan (the compiled CSR snapshot) run
	// it directly: same arithmetic over flat arrays, no per-swap map build.
	if ma, ok := g.(network.MedoidAssigner); ok {
		r, groups := ma.AssignNearest(medoids, st.Med, st.Dist, labels)
		stats.GroupsRead += groups
		return r, nil
	}
	// Medoids that share an edge with candidate points, keyed by group.
	onEdge := make(map[network.GroupID][]int32)
	for i, m := range medoids {
		onEdge[m.Group] = append(onEdge[m.Group], int32(i))
	}
	err = g.ScanGroups(func(gid network.GroupID, pg network.PointGroup, offsets []float64) error {
		stats.GroupsRead++
		d1 := st.Dist[pg.N1]
		d2 := st.Dist[pg.N2]
		m1 := st.Med[pg.N1]
		m2 := st.Med[pg.N2]
		same := onEdge[gid]
		var sg float64
		for i, off := range offsets {
			best, bestM := network.Inf, int32(-1)
			if d := d1 + off; d < best {
				best, bestM = d, m1
			}
			if d := d2 + (pg.Weight - off); d < best {
				best, bestM = d, m2
			}
			for _, mi := range same {
				m := medoids[mi]
				dl := off - m.Pos
				if dl < 0 {
					dl = -dl
				}
				if dl < best {
					best, bestM = dl, mi
				}
			}
			labels[pg.First+network.PointID(i)] = bestM
			if bestM >= 0 {
				sg += best
			}
		}
		r += sg
		return nil
	})
	return r, err
}

// KMedoidsOptions configures the partitioning algorithm of §4.2.
type KMedoidsOptions struct {
	// K is the number of medoids (clusters).
	K int
	// MaxBadSwaps is the number of consecutive unsuccessful medoid
	// replacements after which a local optimum is declared. The paper's
	// experiments use 15, the default.
	MaxBadSwaps int
	// Restarts is the number of random initial medoid sets evaluated; the
	// best local optimum wins. Default 1 (the cost the paper reports is
	// per local optimum).
	Restarts int
	// Recompute disables the Fig. 5 incremental update: every swap re-runs
	// MedoidDistFind from scratch (the ablation baseline of Figure 12).
	Recompute bool
	// InitialMedoids, when non-empty, seeds the first restart with these
	// points instead of a random sample (the paper's "ideal start" of
	// Fig. 11b). Must contain exactly K distinct points.
	InitialMedoids []network.PointID
	// Workers caps the number of goroutines running restarts concurrently
	// (<= 1 runs them serially unless Parallel is set). Results are
	// identical to the serial run: each restart draws its own seed from
	// Rand up front, and every worker queries through its own graph read
	// view, so both the in-memory Network and the disk Store are safe.
	Workers int
	// Parallel is the legacy switch for Workers: when set and Workers is
	// unset, every restart gets its own goroutine.
	Parallel bool
	// Rand is the randomness source; nil falls back to a fixed-seed
	// generator so runs are reproducible by default.
	Rand *rand.Rand
	// Prune, when non-nil, suppresses medoid-expansion frontier pushes that
	// a distance bound proves irrelevant to the final assignment. Labels,
	// medoids and R are identical either way (up to exact distance ties);
	// Stats.Prune.PrunedPushes reports the saved work.
	Prune network.Bounder
}

func (o *KMedoidsOptions) defaults(g network.Graph) error {
	if o.K < 1 {
		return fmt.Errorf("%w: KMedoids: K must be >= 1 (got %d)", ErrInvalidOptions, o.K)
	}
	if o.K > g.NumPoints() {
		return fmt.Errorf("%w: KMedoids: K must not exceed the number of points (got K = %d for %d points)", ErrInvalidOptions, o.K, g.NumPoints())
	}
	if o.MaxBadSwaps == 0 {
		o.MaxBadSwaps = 15
	}
	if o.Restarts == 0 {
		o.Restarts = 1
	}
	if len(o.InitialMedoids) > 0 && len(o.InitialMedoids) != o.K {
		return fmt.Errorf("%w: KMedoids: InitialMedoids must hold exactly K points (got %d for K = %d)", ErrInvalidOptions, len(o.InitialMedoids), o.K)
	}
	if o.Rand == nil {
		o.Rand = rand.New(rand.NewSource(1))
	}
	return nil
}

// KMedoidsResult is the outcome of one KMedoids run.
type KMedoidsResult struct {
	// Labels assigns each point the index (0..K-1) of its medoid, or Noise
	// when unreachable from every medoid.
	Labels []int32
	// Medoids are the final medoid points.
	Medoids []network.PointID
	// R is the final value of the evaluation function Σ d(p, m_p).
	R float64
	// Iterations counts full cluster evaluations that were kept: the
	// initial assignment plus every committed swap (Table 1's
	// "# iterations").
	Iterations int
	// AttemptedSwaps and AcceptedSwaps count medoid replacements tried and
	// committed across all restarts.
	AttemptedSwaps, AcceptedSwaps int
	// FirstIterTime is the duration of the initial MedoidDistFind plus
	// point assignment (Table 1's "first one"); SwapIterTime is the total
	// and SwapIters the count of subsequent swap evaluations ("next ones"
	// are SwapIterTime/SwapIters).
	FirstIterTime time.Duration
	SwapIterTime  time.Duration
	SwapIters     int
	// Stats aggregates traversal work across the run.
	Stats Stats
}

// AvgSwapIterTime returns the mean duration of one swap evaluation.
func (r *KMedoidsResult) AvgSwapIterTime() time.Duration {
	if r.SwapIters == 0 {
		return 0
	}
	return r.SwapIterTime / time.Duration(r.SwapIters)
}

// KMedoids runs the §4.2 partitioning algorithm: random medoids, concurrent
// expansion, then randomized medoid replacement (incremental by default)
// until MaxBadSwaps consecutive replacements fail to improve R, repeated for
// the configured number of restarts; the best local optimum is returned.
// Every restart runs on its own seed drawn from opts.Rand up front, so the
// serial and Parallel modes produce identical results.
func KMedoids(g network.Graph, opts KMedoidsOptions) (*KMedoidsResult, error) {
	return KMedoidsCtx(context.Background(), g, opts)
}

// KMedoidsCtx is KMedoids with cancellation: the expansions check ctx
// periodically and the run returns an error wrapping ctx.Err() when it is
// done. With opts.Workers > 1 (or opts.Parallel) the restarts are fanned
// across goroutines, each querying through its own graph read view.
func KMedoidsCtx(ctx context.Context, g network.Graph, opts KMedoidsOptions) (*KMedoidsResult, error) {
	if err := opts.defaults(g); err != nil {
		return nil, err
	}
	seeds := make([]int64, opts.Restarts)
	for i := range seeds {
		seeds[i] = opts.Rand.Int63()
	}

	results := make([]*restartResult, opts.Restarts)
	accs := make([]*KMedoidsResult, opts.Restarts)
	errs := make([]error, opts.Restarts)
	runOne := func(restart int, view network.Graph) {
		rng := rand.New(rand.NewSource(seeds[restart]))
		var init []network.PointID
		if restart == 0 && len(opts.InitialMedoids) > 0 {
			init = opts.InitialMedoids
		} else {
			init = samplePoints(g.NumPoints(), opts.K, rng)
		}
		accs[restart] = &KMedoidsResult{}
		results[restart], errs[restart] = kmedoidsOnce(ctx, view, opts, init, rng, accs[restart])
	}
	workers := normWorkers(opts.Workers)
	if opts.Parallel && workers < 2 {
		workers = opts.Restarts
	}
	if workers > opts.Restarts {
		workers = opts.Restarts
	}
	if workers > 1 {
		var nextRestart atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				view := network.ReadView(g)
				for {
					r := int(nextRestart.Add(1)) - 1
					if r >= opts.Restarts {
						return
					}
					runOne(r, view)
				}
			}()
		}
		wg.Wait()
	} else {
		for restart := 0; restart < opts.Restarts; restart++ {
			runOne(restart, g)
		}
	}

	res := &KMedoidsResult{}
	var best *restartResult
	for restart := 0; restart < opts.Restarts; restart++ {
		if errs[restart] != nil {
			return nil, errs[restart]
		}
		a := accs[restart]
		res.Iterations += a.Iterations
		res.AttemptedSwaps += a.AttemptedSwaps
		res.AcceptedSwaps += a.AcceptedSwaps
		res.FirstIterTime += a.FirstIterTime
		res.SwapIterTime += a.SwapIterTime
		res.SwapIters += a.SwapIters
		res.Stats.add(a.Stats)
		if rr := results[restart]; best == nil || rr.r < best.r {
			best = rr
		}
	}
	res.Labels = best.labels
	res.Medoids = best.medoids
	res.R = best.r
	return res, nil
}

type restartResult struct {
	labels  []int32
	medoids []network.PointID
	r       float64
}

func kmedoidsOnce(ctx context.Context, g network.Graph, opts KMedoidsOptions, init []network.PointID, rng *rand.Rand, res *KMedoidsResult) (*restartResult, error) {
	medoidIDs := append([]network.PointID(nil), init...)
	infos := make([]network.PointInfo, len(medoidIDs))
	inSet := make(map[network.PointID]bool, len(medoidIDs))
	for i, id := range medoidIDs {
		pi, err := g.PointInfo(id)
		if err != nil {
			return nil, err
		}
		infos[i] = pi
		inSet[id] = true
	}
	if len(inSet) != len(medoidIDs) {
		return nil, fmt.Errorf("%w: KMedoids: InitialMedoids must be distinct", ErrInvalidOptions)
	}

	st := NewMedoidState(g.NumNodes())
	labels := make([]int32, g.NumPoints())
	// One pruner per restart: the shared Bounds is read-only, the memo is
	// this goroutine's own.
	var mp *medoidPruner
	if opts.Prune != nil {
		mp = newMedoidPruner(opts.Prune, g.NumNodes())
	}
	// Graphs with a delta-assignment kernel (the compiled CSR snapshot)
	// rescan only the groups a swap perturbed; sub and trialSub hold the
	// per-group R subtotals of the accepted and the trial assignment. The
	// R association is the same either way (per group, then across groups
	// in order), so the trajectory is identical to the full-scan path.
	da, _ := g.(network.DeltaAssigner)
	var sub, trialSub []float64
	if da != nil {
		sub = make([]float64, g.NumGroups())
		trialSub = make([]float64, g.NumGroups())
	}
	start := time.Now()
	if mp != nil {
		mp.retarget(infos)
	}
	if err := medoidDistFindCtx(ctx, g, infos, st, &res.Stats, mp); err != nil {
		return nil, err
	}
	var r float64
	var err error
	if da != nil {
		var groups int
		r, groups = da.AssignNearestDelta(infos, st.Med, st.Dist, nil, nil, nil, labels, sub)
		res.Stats.GroupsRead += groups
	} else if r, err = AssignPoints(g, infos, st, labels, &res.Stats); err != nil {
		return nil, err
	}
	res.FirstIterTime += time.Since(start)
	res.Iterations++

	backup := NewMedoidState(g.NumNodes())
	trial := make([]int32, g.NumPoints())
	var extra [2]network.GroupID
	bad := 0
	for bad < opts.MaxBadSwaps {
		mi := rng.Intn(opts.K)
		cand := randomNonMedoid(g.NumPoints(), inSet, rng)
		if cand < 0 {
			break // every point is a medoid: nothing to swap
		}
		candInfo, err := g.PointInfo(cand)
		if err != nil {
			return nil, err
		}

		backup.CopyFrom(st)
		start := time.Now()
		oldInfo, oldID := infos[mi], medoidIDs[mi]
		infos[mi], medoidIDs[mi] = candInfo, cand
		if mp != nil {
			mp.retarget(infos)
		}
		if opts.Recompute {
			if err := medoidDistFindCtx(ctx, g, infos, st, &res.Stats, mp); err != nil {
				return nil, err
			}
		} else {
			if err := incMedoidUpdateCtx(ctx, g, infos, mi, st, &res.Stats, mp); err != nil {
				return nil, err
			}
		}
		var r2 float64
		if da != nil {
			// Trial state starts as a copy of the accepted assignment; the
			// kernel patches the groups whose endpoints moved between
			// backup and st, plus the two edges that exchanged the medoid.
			copy(trial, labels)
			copy(trialSub, sub)
			extra[0], extra[1] = oldInfo.Group, candInfo.Group
			var rescanned int
			r2, rescanned = da.AssignNearestDelta(infos, st.Med, st.Dist,
				backup.Med, backup.Dist, extra[:], trial, trialSub)
			res.Stats.GroupsRead += rescanned
		} else if r2, err = AssignPoints(g, infos, st, trial, &res.Stats); err != nil {
			return nil, err
		}
		res.SwapIterTime += time.Since(start)
		res.SwapIters++
		res.AttemptedSwaps++

		if r2 < r {
			// Commit the replacement.
			r = r2
			labels, trial = trial, labels
			sub, trialSub = trialSub, sub
			delete(inSet, oldID)
			inSet[cand] = true
			res.AcceptedSwaps++
			res.Iterations++
			bad = 0
		} else {
			// Roll back.
			infos[mi], medoidIDs[mi] = oldInfo, oldID
			st.CopyFrom(backup)
			bad++
		}
	}
	return &restartResult{labels: labels, medoids: medoidIDs, r: r}, nil
}

// samplePoints draws k distinct point IDs uniformly from [0, n).
func samplePoints(n, k int, rng *rand.Rand) []network.PointID {
	if k > n/2 {
		perm := rng.Perm(n)
		out := make([]network.PointID, k)
		for i := 0; i < k; i++ {
			out[i] = network.PointID(perm[i])
		}
		return out
	}
	seen := make(map[network.PointID]bool, k)
	out := make([]network.PointID, 0, k)
	for len(out) < k {
		p := network.PointID(rng.Intn(n))
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	return out
}

// randomNonMedoid draws a point outside the medoid set, or -1 when none
// exists.
func randomNonMedoid(n int, inSet map[network.PointID]bool, rng *rand.Rand) network.PointID {
	if len(inSet) >= n {
		return -1
	}
	for {
		p := network.PointID(rng.Intn(n))
		if !inSet[p] {
			return p
		}
	}
}
