package core_test

import (
	"fmt"
	"math/rand"
	"testing"

	"netclus/internal/core"
	"netclus/internal/lbound"
	"netclus/internal/network"
	"netclus/internal/testnet"
)

// stripPointCoords rebuilds g without its planar embedding so the pruned
// operators exercise their landmark-only / fallback paths.
func stripPointCoords(t *testing.T, g *network.Network) *network.Network {
	t.Helper()
	b := network.NewBuilder()
	b.AddNodes(g.NumNodes())
	for u := 0; u < g.NumNodes(); u++ {
		nbs, err := g.Neighbors(network.NodeID(u))
		if err != nil {
			t.Fatal(err)
		}
		for _, nb := range nbs {
			if nb.Node > network.NodeID(u) {
				b.AddEdge(network.NodeID(u), nb.Node, nb.Weight)
			}
		}
	}
	err := g.ScanGroups(func(_ network.GroupID, pg network.PointGroup, offsets []float64) error {
		for i, off := range offsets {
			b.AddPoint(pg.N1, pg.N2, off, g.Tag(pg.First+network.PointID(i)))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func sameLabels(t *testing.T, want, got []int32, msg string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d labels vs %d", msg, len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: label[%d] = %d, want %d", msg, i, got[i], want[i])
		}
	}
}

func TestDBSCANPrunedEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		g, cfg, err := testnet.RandomClustered(seed, 60, 150, 4)
		if err != nil {
			t.Fatal(err)
		}
		instances := []struct {
			name string
			g    *network.Network
			opts lbound.Options
		}{
			{"euclidean", g, lbound.Options{Landmarks: 4, EuclideanLB: true}},
			{"coordless", stripPointCoords(t, g), lbound.Options{Landmarks: 4}},
		}
		for _, inst := range instances {
			b, err := lbound.Build(inst.g, inst.opts)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 4} {
				base := core.DBSCANOptions{Eps: cfg.Eps(), MinPts: 3, Workers: workers}
				plain, err := core.DBSCAN(inst.g, base)
				if err != nil {
					t.Fatal(err)
				}
				base.Prune = b
				pruned, err := core.DBSCAN(inst.g, base)
				if err != nil {
					t.Fatal(err)
				}
				msg := fmt.Sprintf("seed %d %s workers %d", seed, inst.name, workers)
				sameLabels(t, plain.Labels, pruned.Labels, msg)
				if plain.NumClusters != pruned.NumClusters || plain.CorePoints != pruned.CorePoints {
					t.Fatalf("%s: clusters/core %d/%d, want %d/%d", msg,
						pruned.NumClusters, pruned.CorePoints, plain.NumClusters, plain.CorePoints)
				}
				if inst.name == "euclidean" && !pruned.Stats.Prune.Fired() {
					t.Fatalf("%s: prune counters never fired: %+v", msg, pruned.Stats.Prune)
				}
			}
		}
	}
}

func TestKMedoidsPrunedEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		g, _, err := testnet.RandomClustered(seed+10, 60, 150, 4)
		if err != nil {
			t.Fatal(err)
		}
		instances := []struct {
			name string
			g    *network.Network
			opts lbound.Options
		}{
			{"euclidean", g, lbound.Options{Landmarks: 4, EuclideanLB: true}},
			{"coordless", stripPointCoords(t, g), lbound.Options{Landmarks: 4}},
		}
		for _, inst := range instances {
			b, err := lbound.Build(inst.g, inst.opts)
			if err != nil {
				t.Fatal(err)
			}
			plain, err := core.KMedoids(inst.g, core.KMedoidsOptions{
				K: 4, Rand: rand.New(rand.NewSource(seed)),
			})
			if err != nil {
				t.Fatal(err)
			}
			pruned, err := core.KMedoids(inst.g, core.KMedoidsOptions{
				K: 4, Rand: rand.New(rand.NewSource(seed)), Prune: b,
			})
			if err != nil {
				t.Fatal(err)
			}
			msg := fmt.Sprintf("seed %d %s", seed, inst.name)
			sameLabels(t, plain.Labels, pruned.Labels, msg)
			if plain.R != pruned.R {
				t.Fatalf("%s: R = %v, want %v", msg, pruned.R, plain.R)
			}
			if len(plain.Medoids) != len(pruned.Medoids) {
				t.Fatalf("%s: %d medoids, want %d", msg, len(pruned.Medoids), len(plain.Medoids))
			}
			for i := range plain.Medoids {
				if plain.Medoids[i] != pruned.Medoids[i] {
					t.Fatalf("%s: medoid %d = %d, want %d", msg, i, pruned.Medoids[i], plain.Medoids[i])
				}
			}
			if !pruned.Stats.Prune.Fired() {
				t.Fatalf("%s: medoid prune counters never fired: %+v", msg, pruned.Stats.Prune)
			}
		}
	}
}
