package core

import (
	"context"
	"fmt"
	"sort"

	"netclus/internal/heapx"
	"netclus/internal/network"
)

// OPTICSOptions configures the network adaptation of OPTICS (Ankerst et al.,
// the paper's [2]). The paper's §2 and §4.3 point to OPTICS as the remedy
// for the hard-to-choose ε of DBSCAN/ε-Link: one OPTICS run at a generous
// Eps orders the points so that the clustering for EVERY ε' <= Eps can be
// read off the reachability plot.
type OPTICSOptions struct {
	// Eps is the maximum neighbourhood radius considered (network
	// distance). Larger values see more structure and cost more.
	Eps float64
	// MinPts is the density threshold, as in DBSCAN.
	MinPts int
	// Workers fans the ε-range queries across this many goroutines (<= 1
	// runs fully sequentially). The parallel mode precomputes every point's
	// neighbourhood up front, each worker with its own graph read view and
	// scratch, then replays the sequential ordering over the cached
	// neighbourhoods; Order, Reach and CoreDist are identical to the
	// sequential run.
	Workers int
}

// OPTICSResult is the cluster-ordering produced by OPTICS.
type OPTICSResult struct {
	// Order lists all points in cluster order.
	Order []network.PointID
	// Reach holds the reachability distance of Order[i] (+Inf for points
	// that start a new density-connected region — the "peaks" of the
	// reachability plot; clusters are its "valleys").
	Reach []float64
	// CoreDist holds, per point ID, its core distance (+Inf when the point
	// has fewer than MinPts neighbours within Eps).
	CoreDist []float64
	// Stats aggregates traversal work (one range query per point).
	Stats Stats
}

// OPTICS computes the density-based cluster ordering of the points under the
// network distance: DBSCAN's expansion, but visiting points in ascending
// reachability so that the ordering encodes every sub-ε clustering at once.
func OPTICS(g network.Graph, opts OPTICSOptions) (*OPTICSResult, error) {
	return OPTICSCtx(context.Background(), g, opts)
}

// OPTICSCtx is OPTICS with cancellation: the range queries check ctx
// periodically and the run returns an error wrapping ctx.Err() when it is
// done. With opts.Workers > 1 the queries are fanned across that many
// goroutines.
func OPTICSCtx(ctx context.Context, g network.Graph, opts OPTICSOptions) (*OPTICSResult, error) {
	if !(opts.Eps > 0) {
		return nil, fmt.Errorf("%w: OPTICS: Eps must be > 0 (got %v)", ErrInvalidOptions, opts.Eps)
	}
	if opts.MinPts < 1 {
		return nil, fmt.Errorf("%w: OPTICS: MinPts must be >= 1 (got %d)", ErrInvalidOptions, opts.MinPts)
	}
	n := g.NumPoints()
	res := &OPTICSResult{
		Order:    make([]network.PointID, 0, n),
		Reach:    make([]float64, 0, n),
		CoreDist: make([]float64, n),
	}
	reach := make([]float64, n)
	processed := make([]bool, n)
	for i := range reach {
		reach[i] = network.Inf
		res.CoreDist[i] = network.Inf
	}

	// With Workers > 1, every neighbourhood is precomputed in parallel; the
	// ordering below then replays over the cached lists. Range queries are
	// read-only, so querying up front instead of at visit time returns the
	// same neighbourhoods and therefore the same ordering.
	var nbhd [][]network.PointDist
	if workers := normWorkers(opts.Workers); workers > 1 {
		nbhd = make([][]network.PointDist, n)
		statsArr := make([]Stats, workers)
		err := parallelPoints(workers, n, func(w int) func(lo, hi int) error {
			view := network.ReadView(g)
			scratch := network.ScratchFor(view)
			st := &statsArr[w]
			return func(lo, hi int) error {
				for p := lo; p < hi; p++ {
					nb, err := scratch.RangeQueryDistCtx(ctx, view, network.PointID(p), opts.Eps)
					if err != nil {
						return err
					}
					st.RangeQueries++
					nbhd[p] = append([]network.PointDist(nil), nb...)
				}
				return nil
			}
		})
		if err != nil {
			return nil, err
		}
		for _, st := range statsArr {
			res.Stats.add(st)
		}
	}

	scratch := network.ScratchFor(g)
	type seed struct {
		p network.PointID
		r float64
	}
	seeds := heapx.New(func(a, b seed) bool { return a.r < b.r })
	ticks := 0

	// process fetches the neighbourhood of p (cached or queried live), emits
	// p to the ordering and, if p is a core point, relaxes its unprocessed
	// neighbours.
	process := func(p network.PointID) error {
		var nb []network.PointDist
		if nbhd != nil {
			nb = nbhd[p]
			if err := ctxCheck(ctx, &ticks); err != nil {
				return err
			}
		} else {
			var err error
			nb, err = scratch.RangeQueryDistCtx(ctx, g, p, opts.Eps)
			if err != nil {
				return err
			}
			res.Stats.RangeQueries++
		}
		processed[p] = true
		res.Order = append(res.Order, p)
		res.Reach = append(res.Reach, reach[p])

		if len(nb) < opts.MinPts {
			return nil // not a core point: emits, but does not expand
		}
		// Core distance: MinPts-th smallest neighbour distance (the point
		// itself is in nb at distance 0, matching DBSCAN's counting).
		ds := make([]float64, len(nb))
		for i, q := range nb {
			ds[i] = q.Dist
		}
		sort.Float64s(ds)
		cd := ds[opts.MinPts-1]
		res.CoreDist[p] = cd
		for _, q := range nb {
			if processed[q.Point] {
				continue
			}
			r := q.Dist
			if cd > r {
				r = cd
			}
			if r < reach[q.Point] {
				reach[q.Point] = r
				seeds.Push(seed{p: q.Point, r: r})
			}
		}
		return nil
	}

	for p := 0; p < n; p++ {
		if processed[p] {
			continue
		}
		if err := process(network.PointID(p)); err != nil {
			return nil, err
		}
		for !seeds.Empty() {
			s := seeds.Pop()
			if processed[s.p] || s.r > reach[s.p] {
				continue // stale lazy-heap entry
			}
			if err := process(s.p); err != nil {
				return nil, err
			}
		}
	}
	return res, nil
}

// ExtractDBSCAN reads the DBSCAN clustering for any eps' <= the Eps the
// ordering was built with directly off the reachability plot: walking the
// order, a reachability above eps' closes the current cluster; the next
// point starts a new one if it is a core point at eps'. Border points join
// the cluster they were reached from; points core-less at eps' become Noise.
func (r *OPTICSResult) ExtractDBSCAN(epsPrime float64) []int32 {
	labels := make([]int32, len(r.Order))
	for i := range labels {
		labels[i] = Noise
	}
	next := int32(-1)
	current := Noise
	for i, p := range r.Order {
		if r.Reach[i] > epsPrime {
			if r.CoreDist[p] <= epsPrime {
				next++
				current = next
				labels[p] = current
			} else {
				labels[p] = Noise
				current = Noise
			}
			continue
		}
		// Density-reachable at eps' from the previous region.
		if current == Noise {
			// The region opener was noise at eps' but this point is
			// reachable — it must itself decide: core opens a cluster.
			if r.CoreDist[p] <= epsPrime {
				next++
				current = next
				labels[p] = current
			} else {
				labels[p] = Noise
			}
			continue
		}
		labels[p] = current
	}
	return labels
}

// ReachabilityPlot returns (order index -> reachability) pairs suitable for
// plotting; +Inf entries are cluster separators.
func (r *OPTICSResult) ReachabilityPlot() []float64 {
	return append([]float64(nil), r.Reach...)
}
