package core

import (
	"fmt"

	"netclus/internal/network"
)

// Linkage selects the inter-cluster distance used by RepLink.
type Linkage int

const (
	// CompleteLinkage merges by the maximum pairwise distance.
	CompleteLinkage Linkage = iota
	// AverageLinkage merges by the average pairwise distance.
	AverageLinkage
)

// RepLinkOptions configures the representative-based hierarchical algorithm
// — the paper's §7 future work ("hierarchical algorithms that consider
// distances between multiple points from the merged clusters (e.g.
// representatives)"). Unlike Single-Link, complete and average linkage have
// no network-Voronoi shortcut; RepLink approximates them by keeping up to
// MaxReps well-spread representative points per cluster and evaluating the
// linkage over representative pairs with on-demand shortest-path queries.
type RepLinkOptions struct {
	// Linkage is the merge criterion (default CompleteLinkage).
	Linkage Linkage
	// MaxReps caps the representatives per cluster, chosen by farthest-point
	// sampling (CURE-flavoured). 0 keeps every member — exact linkage, but
	// quadratic in cluster size; use it only on small inputs.
	MaxReps int
	// StopAtClusters stops the agglomeration at this many clusters
	// (0/1 computes the full dendrogram).
	StopAtClusters int
	// PreEps, when positive, first collapses ε-Link components (ε = PreEps)
	// into starting clusters — the scalability pre-phase that keeps the
	// quadratic agglomeration over a small number of dense groups. The
	// collapsed levels are recorded as pre-merges at height PreEps.
	PreEps float64
}

// RepLinkResult is the outcome of a RepLink run.
type RepLinkResult struct {
	Dendrogram    *Dendrogram
	FinalClusters int
	// DistanceCalls counts the shortest-path evaluations performed.
	DistanceCalls int
	Stats         Stats
}

// repCluster is one active cluster during agglomeration.
type repCluster struct {
	members []network.PointID
	reps    []network.PointID
}

// RepLink runs representative-based agglomerative clustering under the
// network distance. With MaxReps = 0 and PreEps = 0 it computes the exact
// complete- or average-linkage dendrogram (verified against the matrix
// baseline in the tests); with a representative cap and the ε pre-phase it
// scales to larger inputs at bounded approximation.
func RepLink(g network.Graph, opts RepLinkOptions) (*RepLinkResult, error) {
	if opts.MaxReps < 0 {
		return nil, fmt.Errorf("%w: RepLink: MaxReps must be >= 0 (got %d)", ErrInvalidOptions, opts.MaxReps)
	}
	if opts.PreEps < 0 {
		return nil, fmt.Errorf("%w: RepLink: PreEps must be >= 0 (got %v)", ErrInvalidOptions, opts.PreEps)
	}
	n := g.NumPoints()
	res := &RepLinkResult{Dendrogram: &Dendrogram{NumPoints: n}}
	if n == 0 {
		return res, nil
	}
	stop := opts.StopAtClusters
	if stop < 1 {
		stop = 1
	}

	// Distance oracle with memoization over point pairs.
	cache := map[uint64]float64{}
	dist := func(p, q network.PointID) (float64, error) {
		if p == q {
			return 0, nil
		}
		a, b := p, q
		if a > b {
			a, b = b, a
		}
		key := uint64(uint32(a))<<32 | uint64(uint32(b))
		if d, ok := cache[key]; ok {
			return d, nil
		}
		d, err := network.PointDistance(g, p, q)
		if err != nil {
			return 0, err
		}
		res.DistanceCalls++
		cache[key] = d
		return d, nil
	}

	// Starting clusters: singletons, or ε-Link components under PreEps.
	var clusters []*repCluster
	if opts.PreEps > 0 {
		el, err := EpsLink(g, EpsLinkOptions{Eps: opts.PreEps})
		if err != nil {
			return nil, err
		}
		res.Stats.add(el.Stats)
		byLabel := map[int32]*repCluster{}
		for p, l := range el.Labels {
			c, ok := byLabel[l]
			if !ok {
				c = &repCluster{}
				byLabel[l] = c
				clusters = append(clusters, c)
			}
			c.members = append(c.members, network.PointID(p))
		}
		// Record the collapsed levels so dendrogram replays stay connected.
		for _, c := range clusters {
			for i := 1; i < len(c.members); i++ {
				res.Dendrogram.Merges = append(res.Dendrogram.Merges, MergeStep{
					A: c.members[0], B: c.members[i], Dist: opts.PreEps, Size: int32(i + 1),
				})
			}
		}
		res.Dendrogram.PreMerges = len(res.Dendrogram.Merges)
	} else {
		for p := 0; p < n; p++ {
			clusters = append(clusters, &repCluster{members: []network.PointID{network.PointID(p)}})
		}
	}
	for _, c := range clusters {
		if err := c.pickReps(opts.MaxReps, dist); err != nil {
			return nil, err
		}
	}

	// Pairwise cluster distances (symmetric, lazily maintained).
	linkDist := func(a, b *repCluster) (float64, error) {
		switch opts.Linkage {
		case CompleteLinkage:
			worst := 0.0
			for _, p := range a.reps {
				for _, q := range b.reps {
					d, err := dist(p, q)
					if err != nil {
						return 0, err
					}
					if d > worst {
						worst = d
					}
				}
			}
			return worst, nil
		case AverageLinkage:
			sum, cnt := 0.0, 0
			for _, p := range a.reps {
				for _, q := range b.reps {
					d, err := dist(p, q)
					if err != nil {
						return 0, err
					}
					sum += d
					cnt++
				}
			}
			return sum / float64(cnt), nil
		default:
			return 0, fmt.Errorf("%w: RepLink: unknown Linkage %d", ErrInvalidOptions, opts.Linkage)
		}
	}

	C := len(clusters)
	d := make([][]float64, C)
	for i := range d {
		d[i] = make([]float64, C)
	}
	active := make([]bool, C)
	for i := range active {
		active[i] = true
	}
	for i := 0; i < C; i++ {
		for j := i + 1; j < C; j++ {
			v, err := linkDist(clusters[i], clusters[j])
			if err != nil {
				return nil, err
			}
			d[i][j], d[j][i] = v, v
		}
	}

	remaining := C
	for remaining > stop {
		bi, bj, bd := -1, -1, network.Inf
		for i := 0; i < C; i++ {
			if !active[i] {
				continue
			}
			for j := i + 1; j < C; j++ {
				if active[j] && d[i][j] < bd {
					bi, bj, bd = i, j, d[i][j]
				}
			}
		}
		if bi < 0 || bd == network.Inf {
			break // disconnected components
		}
		a, b := clusters[bi], clusters[bj]
		res.Dendrogram.Merges = append(res.Dendrogram.Merges, MergeStep{
			A: a.members[0], B: b.members[0], Dist: bd,
			Size: int32(len(a.members) + len(b.members)),
		})
		a.members = append(a.members, b.members...)
		if err := a.pickReps(opts.MaxReps, dist); err != nil {
			return nil, err
		}
		active[bj] = false
		remaining--
		for k := 0; k < C; k++ {
			if active[k] && k != bi {
				v, err := linkDist(a, clusters[k])
				if err != nil {
					return nil, err
				}
				d[bi][k], d[k][bi] = v, v
			}
		}
	}
	res.FinalClusters = remaining
	return res, nil
}

// pickReps selects up to maxReps well-spread members by farthest-point
// sampling (0 keeps all members).
func (c *repCluster) pickReps(maxReps int, dist func(p, q network.PointID) (float64, error)) error {
	if maxReps == 0 || len(c.members) <= maxReps {
		c.reps = c.members
		return nil
	}
	reps := make([]network.PointID, 0, maxReps)
	minD := make([]float64, len(c.members))
	for i := range minD {
		minD[i] = network.Inf
	}
	// Start from the first member for determinism; then repeatedly take the
	// member farthest from the chosen set.
	next := 0
	for len(reps) < maxReps {
		reps = append(reps, c.members[next])
		chosen := c.members[next]
		far, farD := -1, -1.0
		for i, m := range c.members {
			if minD[i] == 0 {
				continue
			}
			dd, err := dist(chosen, m)
			if err != nil {
				return err
			}
			if dd < minD[i] {
				minD[i] = dd
			}
			if minD[i] > farD {
				far, farD = i, minD[i]
			}
		}
		if far < 0 || farD == 0 {
			break
		}
		next = far
	}
	c.reps = reps
	return nil
}
