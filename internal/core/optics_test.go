package core_test

import (
	"fmt"
	"math"
	"testing"

	"netclus/internal/core"
	"netclus/internal/datagen"
	"netclus/internal/evalx"
	"netclus/internal/matrix"
	"netclus/internal/testnet"
)

func TestOPTICSOrderingInvariants(t *testing.T) {
	g, err := testnet.Random(5, 40, 80)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.OPTICS(g, core.OPTICSOptions{Eps: 2.0, MinPts: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Order) != g.NumPoints() || len(res.Reach) != g.NumPoints() {
		t.Fatalf("ordering covers %d of %d points", len(res.Order), g.NumPoints())
	}
	seen := map[int32]bool{}
	for _, p := range res.Order {
		if seen[int32(p)] {
			t.Fatalf("point %d emitted twice", p)
		}
		seen[int32(p)] = true
	}
	if res.Stats.RangeQueries != g.NumPoints() {
		t.Fatalf("%d range queries for %d points", res.Stats.RangeQueries, g.NumPoints())
	}
	// Core distances match a brute-force MinPts-th neighbour computation.
	dist, err := matrix.PointDistances(g)
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < g.NumPoints(); p++ {
		want := bruteCoreDist(dist, p, 2.0, 3)
		if math.Abs(res.CoreDist[p]-want) > 1e-9 && !(math.IsInf(want, 1) && math.IsInf(res.CoreDist[p], 1)) {
			t.Fatalf("core dist of %d: %v, want %v", p, res.CoreDist[p], want)
		}
	}
}

func bruteCoreDist(dist [][]float64, p int, eps float64, minPts int) float64 {
	var within []float64
	for q := range dist[p] {
		if dist[p][q] <= eps {
			within = append(within, dist[p][q])
		}
	}
	if len(within) < minPts {
		return math.Inf(1)
	}
	// selection by simple sort
	for i := 1; i < len(within); i++ {
		for j := i; j > 0 && within[j] < within[j-1]; j-- {
			within[j], within[j-1] = within[j-1], within[j]
		}
	}
	return within[minPts-1]
}

func TestOPTICSExtractionMatchesDBSCAN(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			g, err := testnet.Random(seed+70, 40, 80)
			if err != nil {
				t.Fatal(err)
			}
			const eps = 2.5
			for _, minPts := range []int{2, 3, 4} {
				opt, err := core.OPTICS(g, core.OPTICSOptions{Eps: eps, MinPts: minPts})
				if err != nil {
					t.Fatal(err)
				}
				for _, epsPrime := range []float64{eps, 0.6 * eps, 0.3 * eps} {
					got := opt.ExtractDBSCAN(epsPrime)
					db, err := core.DBSCAN(g, core.DBSCANOptions{Eps: epsPrime, MinPts: minPts})
					if err != nil {
						t.Fatal(err)
					}
					// DBSCAN noise must be extraction noise; extraction may
					// additionally miss some border points (the OPTICS
					// paper's known approximation), never core points.
					var coreGot, coreWant []int32
					for p := range got {
						if db.Labels[p] == core.Noise && got[p] != core.Noise {
							t.Fatalf("minPts=%d eps'=%v: DBSCAN noise %d clustered by extraction",
								minPts, epsPrime, p)
						}
						if db.Core[p] {
							if got[p] == core.Noise {
								t.Fatalf("minPts=%d eps'=%v: core point %d lost by extraction",
									minPts, epsPrime, p)
							}
							coreGot = append(coreGot, got[p])
							coreWant = append(coreWant, db.Labels[p])
						}
					}
					if len(coreWant) > 0 {
						ari, err := evalx.ARI(coreWant, coreGot)
						if err != nil {
							t.Fatal(err)
						}
						if ari != 1 {
							t.Fatalf("minPts=%d eps'=%v: core partition ARI %v", minPts, epsPrime, ari)
						}
					}
				}
			}
		})
	}
}

func TestOPTICSFindsClustersAtMultipleScales(t *testing.T) {
	g, cfg, err := testnet.RandomClustered(9, 400, 500, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.OPTICS(g, core.OPTICSOptions{Eps: 4 * cfg.Eps(), MinPts: 3})
	if err != nil {
		t.Fatal(err)
	}
	labels := core.SuppressSmallClusters(res.ExtractDBSCAN(cfg.Eps()), 3)
	truth := append([]int32(nil), g.Tags()...)
	ari, err := evalx.ARI(
		evalx.NoiseAsSingletons(truth, datagen.OutlierTag),
		evalx.NoiseAsSingletons(labels, core.Noise))
	if err != nil {
		t.Fatal(err)
	}
	if ari < 0.9 {
		t.Fatalf("OPTICS extraction ARI %v < 0.9 (%d clusters)", ari, core.CountClusters(labels))
	}
	if len(res.ReachabilityPlot()) != g.NumPoints() {
		t.Fatal("plot length mismatch")
	}
}

func TestOPTICSValidation(t *testing.T) {
	g, err := testnet.Random(1, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.OPTICS(g, core.OPTICSOptions{Eps: 0, MinPts: 2}); err == nil {
		t.Fatal("want error for Eps = 0")
	}
	if _, err := core.OPTICS(g, core.OPTICSOptions{Eps: 1, MinPts: 0}); err == nil {
		t.Fatal("want error for MinPts = 0")
	}
}
