package core

import (
	"math/rand"
	"testing"

	"netclus/internal/unionfind"
)

// TestLabelMergePairwiseEquivalence checks that the pairwise tree merge
// (mergeUnionFindsCrit) produces exactly the partition of the sequential
// left fold and of one union-find fed every union directly — unions commute,
// so shard placement and fold order must be invisible.
func TestLabelMergePairwiseEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, shards := range []int{1, 2, 3, 5, 8} {
		for trial := 0; trial < 4; trial++ {
			n := 50 + rng.Intn(150)
			flat := unionfind.New(n)
			ufs := make([]*unionfind.UF, shards)
			seq := make([]*unionfind.UF, shards)
			for w := range ufs {
				ufs[w] = unionfind.New(n)
				seq[w] = unionfind.New(n)
			}
			for i := 0; i < n*2; i++ {
				a, b, w := rng.Intn(n), rng.Intn(n), rng.Intn(shards)
				flat.Union(a, b)
				ufs[w].Union(a, b)
				seq[w].Union(a, b)
			}
			merged, crit, wall := mergeUnionFindsCrit(ufs)
			fold := mergeUnionFinds(seq)
			if crit < 0 || wall < 0 {
				t.Fatalf("shards=%d: implausible crit=%d wall=%d", shards, crit, wall)
			}
			for a := 0; a < n; a++ {
				for b := a + 1; b < n; b++ {
					want := flat.SameSet(a, b)
					if merged.SameSet(a, b) != want {
						t.Fatalf("shards=%d trial=%d: pairwise merge partition differs at (%d,%d)", shards, trial, a, b)
					}
					if fold.SameSet(a, b) != want {
						t.Fatalf("shards=%d trial=%d: left fold partition differs at (%d,%d)", shards, trial, a, b)
					}
				}
			}
		}
	}
}

// TestLabelMergeSingletonCheap pins MergeInto's contract: merging a shard
// that never recorded a union must leave the destination untouched.
func TestLabelMergeSingletonCheap(t *testing.T) {
	n := 64
	dst := unionfind.New(n)
	dst.Union(1, 2)
	dst.Union(3, 4)
	before := dst.Sets()
	empty := unionfind.New(n)
	empty.MergeInto(dst)
	if dst.Sets() != before {
		t.Fatalf("merging an empty shard changed the set count: %d -> %d", before, dst.Sets())
	}
	if !dst.SameSet(1, 2) || !dst.SameSet(3, 4) || dst.SameSet(1, 3) {
		t.Fatal("merging an empty shard corrupted existing components")
	}
}
