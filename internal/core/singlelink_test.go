package core_test

import (
	"fmt"
	"math"
	"sort"
	"testing"

	"netclus/internal/core"
	"netclus/internal/evalx"
	"netclus/internal/matrix"
	"netclus/internal/testnet"
)

func TestSingleLinkMatchesBruteForce(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			g, err := testnet.Random(seed, 32, 45)
			if err != nil {
				t.Fatal(err)
			}
			dist, err := matrix.PointDistances(g)
			if err != nil {
				t.Fatal(err)
			}
			want := matrix.SingleLink(dist)
			res, err := core.SingleLink(g, core.SingleLinkOptions{})
			if err != nil {
				t.Fatal(err)
			}
			got := res.Dendrogram.MergeDistances()
			if len(got) != len(want) {
				t.Fatalf("%d merges, brute force has %d", len(got), len(want))
			}
			sort.Float64s(got) // defensive; should already ascend
			for i := range got {
				if math.Abs(got[i]-want[i].Dist) > 1e-9 {
					t.Fatalf("merge %d at distance %v, brute force %v", i, got[i], want[i].Dist)
				}
			}
			// The partitions at several cut heights must agree too (equal
			// heights alone would not prove the merges join the same sets).
			for _, frac := range []float64{0.25, 0.5, 0.75, 0.9} {
				cut := want[int(frac*float64(len(want)-1))].Dist + 1e-12
				bruteUF := cutBrute(want, g.NumPoints(), cut)
				samePartition(t, bruteUF, res.Dendrogram.LabelsAtDistance(cut),
					fmt.Sprintf("cut at %v", cut))
			}
		})
	}
}

// cutBrute labels points by applying brute-force merges up to distance cut.
func cutBrute(merges []matrix.Merge, n int, cut float64) []int32 {
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, m := range merges {
		if m.Dist <= cut {
			parent[find(m.A)] = find(m.B)
		}
	}
	labels := make([]int32, n)
	byRoot := map[int]int32{}
	next := int32(0)
	for i := 0; i < n; i++ {
		r := find(i)
		l, ok := byRoot[r]
		if !ok {
			l = next
			next++
			byRoot[r] = l
		}
		labels[i] = l
	}
	return labels
}

func TestSingleLinkAscendingMerges(t *testing.T) {
	g, err := testnet.Random(5, 40, 80)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.SingleLink(g, core.SingleLinkOptions{})
	if err != nil {
		t.Fatal(err)
	}
	d := res.Dendrogram.MergeDistances()
	for i := 1; i < len(d); i++ {
		if d[i] < d[i-1] {
			t.Fatalf("merge %d at %v after merge at %v: not ascending", i, d[i], d[i-1])
		}
	}
	if res.FinalClusters != 1 {
		t.Fatalf("connected network ended with %d clusters, want 1", res.FinalClusters)
	}
	if len(d) != g.NumPoints()-1 {
		t.Fatalf("%d merges for %d points, want %d", len(d), g.NumPoints(), g.NumPoints()-1)
	}
}

func TestSingleLinkDeltaHeuristicPreservesUpperDendrogram(t *testing.T) {
	g, cfg, err := testnet.RandomClustered(11, 300, 400, 3)
	if err != nil {
		t.Fatal(err)
	}
	full, err := core.SingleLink(g, core.SingleLinkOptions{})
	if err != nil {
		t.Fatal(err)
	}
	delta := cfg.Delta()
	fast, err := core.SingleLink(g, core.SingleLinkOptions{Delta: delta})
	if err != nil {
		t.Fatal(err)
	}
	if fast.Dendrogram.PreMerges == 0 {
		t.Fatal("δ heuristic pre-merged nothing; test data too sparse")
	}
	for _, cut := range []float64{delta, delta * 1.5, cfg.Eps(), cfg.Eps() * 2} {
		samePartition(t, full.Dendrogram.LabelsAtDistance(cut),
			fast.Dendrogram.LabelsAtDistance(cut), fmt.Sprintf("cut %v", cut))
	}
}

func TestSingleLinkEqualsEpsLink(t *testing.T) {
	// §5.1: Single-Link stopped at merge distance > ε discovers exactly the
	// ε-Link clusters.
	for seed := int64(20); seed < 24; seed++ {
		g, err := testnet.Random(seed, 60, 120)
		if err != nil {
			t.Fatal(err)
		}
		sl, err := core.SingleLink(g, core.SingleLinkOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for _, eps := range []float64{0.4, 0.9, 2.0} {
			el, err := core.EpsLink(g, core.EpsLinkOptions{Eps: eps})
			if err != nil {
				t.Fatal(err)
			}
			samePartition(t, el.Labels, sl.Dendrogram.LabelsAtDistance(eps),
				fmt.Sprintf("seed %d eps %v", seed, eps))
		}
	}
}

func TestSingleLinkStopAtClusters(t *testing.T) {
	g, err := testnet.Random(9, 40, 70)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 3, 10} {
		res, err := core.SingleLink(g, core.SingleLinkOptions{StopAtClusters: k})
		if err != nil {
			t.Fatal(err)
		}
		if res.FinalClusters != k {
			t.Fatalf("StopAtClusters=%d: ended with %d clusters", k, res.FinalClusters)
		}
		if want := g.NumPoints() - k; len(res.Dendrogram.Merges) != want {
			t.Fatalf("StopAtClusters=%d: %d merges, want %d", k, len(res.Dendrogram.Merges), want)
		}
	}
}

func TestSingleLinkLabelsAtCount(t *testing.T) {
	g, err := testnet.Random(13, 30, 25)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.SingleLink(g, core.SingleLinkOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 2, 5, 25} {
		labels := res.Dendrogram.LabelsAtCount(k)
		if got := evalx.NumClusters(labels, -999); got != k {
			t.Fatalf("LabelsAtCount(%d) produced %d clusters", k, got)
		}
	}
}

func TestInterestingLevels(t *testing.T) {
	// A dendrogram with two sharp jumps: many small merges, a jump to 10,
	// more small steps, a jump to 100.
	d := &core.Dendrogram{NumPoints: 21}
	dist := []float64{1, 1.1, 1.2, 1.3, 1.4, 1.5, 1.6, 1.7, 1.8, 10, 10.1, 10.2, 10.3, 10.4, 10.5, 10.6, 10.7, 10.8, 10.9, 100}
	for i, x := range dist {
		d.Merges = append(d.Merges, core.MergeStep{A: 0, B: 0, Dist: x, Size: int32(i + 2)})
	}
	levels := d.InterestingLevels(5, 3)
	if len(levels) != 2 {
		t.Fatalf("found %d interesting levels (%v), want 2", len(levels), levels)
	}
	if levels[0].Index != 9 || levels[1].Index != 19 {
		t.Fatalf("interesting levels at %d and %d, want 9 and 19", levels[0].Index, levels[1].Index)
	}
	if levels[0].Ratio <= 3 || levels[1].Ratio <= 3 {
		t.Fatalf("ratios %v, %v should exceed the factor", levels[0].Ratio, levels[1].Ratio)
	}
}

func TestSingleLinkEmptyAndTiny(t *testing.T) {
	g, err := testnet.Random(2, 12, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.SingleLink(g, core.SingleLinkOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Dendrogram.Merges) != 0 || res.FinalClusters != 0 {
		t.Fatalf("empty network: %+v", res)
	}
	g1, err := testnet.Random(3, 12, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err = core.SingleLink(g1, core.SingleLinkOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Dendrogram.Merges) != 0 || res.FinalClusters != 1 {
		t.Fatalf("single point: %+v", res)
	}
}
