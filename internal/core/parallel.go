package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"netclus/internal/network"
	"netclus/internal/unionfind"
)

// ErrInvalidOptions is wrapped by every option-validation failure of the
// clustering algorithms and the query layer (aliasing the network package's
// sentinel), so callers can recognize all of them with a single errors.Is
// check.
var ErrInvalidOptions = network.ErrInvalidOptions

// ctxCheckMask paces context polls in core-level loops: the context is
// polled once every ctxCheckMask+1 bumps, mirroring the pacing inside the
// network traversal loops.
const ctxCheckMask = 255

// ctxCheck polls ctx once every ctxCheckMask+1 bumps of *counter and at the
// first bump, returning a wrapped ctx.Err() when the context is done.
func ctxCheck(ctx context.Context, counter *int) error {
	*counter++
	if *counter != 1 && *counter&ctxCheckMask != 0 {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("core: run cancelled: %w", err)
	}
	return nil
}

// normWorkers resolves a Workers option value to an effective worker count
// (0 and negative mean sequential).
func normWorkers(w int) int {
	if w < 1 {
		return 1
	}
	return w
}

// batchSize picks the contiguous batch length for fanning n items across
// workers: small enough to balance skewed per-item cost, large enough to
// amortize the shared counter and keep same-edge points on one worker.
func batchSize(n, workers int) int {
	b := n / (workers * 8)
	if b < 16 {
		b = 16
	}
	if b > 1024 {
		b = 1024
	}
	return b
}

// parallelPoints fans work over the index range [0, n) across workers
// goroutines. Each goroutine calls handler(w) once to build its batch
// function — handler typically allocates per-worker state there (a graph
// read view, a RangeScratch, a union-find shard) — then pulls contiguous
// batches [lo, hi) from a shared counter until the range is exhausted or
// any worker fails. The first error stops the remaining batches and is
// returned.
func parallelPoints(workers, n int, handler func(w int) func(lo, hi int) error) error {
	size := batchSize(n, workers)
	var next atomic.Int64
	var failed atomic.Bool
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			fn := handler(w)
			for !failed.Load() {
				lo := int(next.Add(int64(size))) - size
				if lo >= n {
					return
				}
				hi := lo + size
				if hi > n {
					hi = n
				}
				if err := fn(lo, hi); err != nil {
					errs[w] = err
					failed.Store(true)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// mergeUnionFinds folds the worker union-find shards into the first one and
// returns it: every element is unioned with its shard representative, so the
// result's components are the transitive closure of all shards' unions. nil
// shards (workers that never ran) are skipped.
func mergeUnionFinds(ufs []*unionfind.UF) *unionfind.UF {
	var dst *unionfind.UF
	for _, src := range ufs {
		if src == nil {
			continue
		}
		if dst == nil {
			dst = src
			continue
		}
		src.MergeInto(dst)
	}
	return dst
}

// mergeUnionFindsCrit folds the shards pairwise in log2(len) rounds — the
// merges within a round touch disjoint shard pairs, so they run concurrently
// (when the host has spare processors) and each round charges only its
// slowest merge to the returned critical path. Unions commute, so the folded
// partition is identical to the sequential left fold. wallNs is the realized
// elapsed time. All shards must be non-nil (the kernel paths build one per
// worker upfront).
func mergeUnionFindsCrit(ufs []*unionfind.UF) (uf *unionfind.UF, critNs, wallNs int64) {
	live := make([]*unionfind.UF, len(ufs))
	copy(live, ufs)
	t0 := time.Now()
	for len(live) > 1 {
		half := (len(live) + 1) / 2
		pairs := len(live) - half
		roundNs := make([]int64, pairs)
		run := func(i int) {
			m0 := time.Now()
			live[half+i].MergeInto(live[i])
			roundNs[i] = time.Since(m0).Nanoseconds()
		}
		if pairs > 1 && runtime.GOMAXPROCS(0) > 1 {
			var wg sync.WaitGroup
			for i := 0; i < pairs; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					run(i)
				}(i)
			}
			wg.Wait()
		} else {
			for i := 0; i < pairs; i++ {
				run(i)
			}
		}
		var max int64
		for _, ns := range roundNs {
			if ns > max {
				max = ns
			}
		}
		critNs += max
		live = live[:half]
	}
	return live[0], critNs, time.Since(t0).Nanoseconds()
}

// labelComponents assigns cluster labels by ascending minimum member: it
// scans the points in ID order and gives each union-find root the next label
// on first sight — exactly the order in which the sequential algorithms
// discover clusters. Points for which include returns false keep Noise.
// It returns the number of labels assigned.
func labelComponents(uf *unionfind.UF, labels []int32, include func(p int) bool) int32 {
	rootLab := make([]int32, len(labels))
	for i := range rootLab {
		rootLab[i] = Noise
	}
	next := int32(0)
	for p := range labels {
		labels[p] = Noise
		if include != nil && !include(p) {
			continue
		}
		r := uf.Find(p)
		if rootLab[r] == Noise {
			rootLab[r] = next
			next++
		}
		labels[p] = rootLab[r]
	}
	return next
}
