package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"netclus/internal/network"
	"netclus/internal/unionfind"
)

// ErrInvalidOptions is wrapped by every option-validation failure of the
// clustering algorithms and the query layer (aliasing the network package's
// sentinel), so callers can recognize all of them with a single errors.Is
// check.
var ErrInvalidOptions = network.ErrInvalidOptions

// ctxCheckMask paces context polls in core-level loops: the context is
// polled once every ctxCheckMask+1 bumps, mirroring the pacing inside the
// network traversal loops.
const ctxCheckMask = 255

// ctxCheck polls ctx once every ctxCheckMask+1 bumps of *counter and at the
// first bump, returning a wrapped ctx.Err() when the context is done.
func ctxCheck(ctx context.Context, counter *int) error {
	*counter++
	if *counter != 1 && *counter&ctxCheckMask != 0 {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("core: run cancelled: %w", err)
	}
	return nil
}

// normWorkers resolves a Workers option value to an effective worker count
// (0 and negative mean sequential).
func normWorkers(w int) int {
	if w < 1 {
		return 1
	}
	return w
}

// batchSize picks the contiguous batch length for fanning n items across
// workers: small enough to balance skewed per-item cost, large enough to
// amortize the shared counter and keep same-edge points on one worker.
func batchSize(n, workers int) int {
	b := n / (workers * 8)
	if b < 16 {
		b = 16
	}
	if b > 1024 {
		b = 1024
	}
	return b
}

// parallelPoints fans work over the index range [0, n) across workers
// goroutines. Each goroutine calls handler(w) once to build its batch
// function — handler typically allocates per-worker state there (a graph
// read view, a RangeScratch, a union-find shard) — then pulls contiguous
// batches [lo, hi) from a shared counter until the range is exhausted or
// any worker fails. The first error stops the remaining batches and is
// returned.
func parallelPoints(workers, n int, handler func(w int) func(lo, hi int) error) error {
	size := batchSize(n, workers)
	var next atomic.Int64
	var failed atomic.Bool
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			fn := handler(w)
			for !failed.Load() {
				lo := int(next.Add(int64(size))) - size
				if lo >= n {
					return
				}
				hi := lo + size
				if hi > n {
					hi = n
				}
				if err := fn(lo, hi); err != nil {
					errs[w] = err
					failed.Store(true)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// mergeUnionFinds folds the worker union-find shards into the first one and
// returns it: every element is unioned with its shard representative, so the
// result's components are the transitive closure of all shards' unions. nil
// shards (workers that never ran) are skipped.
func mergeUnionFinds(ufs []*unionfind.UF) *unionfind.UF {
	var dst *unionfind.UF
	for _, src := range ufs {
		if src == nil {
			continue
		}
		if dst == nil {
			dst = src
			continue
		}
		for i := 0; i < src.Len(); i++ {
			dst.Union(i, src.Find(i))
		}
	}
	return dst
}

// labelComponents assigns cluster labels by ascending minimum member: it
// scans the points in ID order and gives each union-find root the next label
// on first sight — exactly the order in which the sequential algorithms
// discover clusters. Points for which include returns false keep Noise.
// It returns the number of labels assigned.
func labelComponents(uf *unionfind.UF, labels []int32, include func(p int) bool) int32 {
	rootLab := make([]int32, len(labels))
	for i := range rootLab {
		rootLab[i] = Noise
	}
	next := int32(0)
	for p := range labels {
		labels[p] = Noise
		if include != nil && !include(p) {
			continue
		}
		r := uf.Find(p)
		if rootLab[r] == Noise {
			rootLab[r] = next
			next++
		}
		labels[p] = rootLab[r]
	}
	return next
}
