package core

import (
	"context"
	"time"

	"netclus/internal/network"
	"netclus/internal/unionfind"
)

// This file drives DBSCAN and ε-Link through a graph's fused clustering
// engine (network.ClusterKernel — the compiled CSR snapshot and the sharded
// set implement it). The kernel supplies the two parallel passes — fused
// core flags and ε-graph unions — and this layer finishes the labelling
// with the PR 1 merge contract: order-free union-find merge, components
// labelled by ascending minimum member, borders adopting the minimum
// core-neighbour label. The labels are identical to the sequential generic
// path; only the wall clock (and the CritNs/WallNs stats) differ.

// dbscanKernel labels via ck's CoreFlags + EpsUnions passes.
func dbscanKernel(ctx context.Context, g network.Graph, ck network.ClusterKernel, opts DBSCANOptions, workers int) (*DBSCANResult, error) {
	n := g.NumPoints()
	res := &DBSCANResult{Labels: make([]int32, n), Core: make([]bool, n)}
	core := res.Core
	st1, err := ck.CoreFlags(ctx, opts.Eps, opts.MinPts, workers, opts.Prune, core)
	if err != nil {
		return nil, err
	}
	ufs := make([]*unionfind.UF, workers)
	for w := range ufs {
		ufs[w] = unionfind.New(n)
	}
	borders := make([][]borderEdge, workers)
	st2, err := ck.EpsUnions(ctx, opts.Eps, workers, opts.Prune, core, ufs, func(w int, b, c network.PointID) {
		borders[w] = append(borders[w], borderEdge{border: b, core: c})
	})
	if err != nil {
		return nil, err
	}

	// Epilogue — same labelling as dbscanParallel's, but the shard merge is
	// folded pairwise so its critical path shrinks with rounds, and the
	// remaining serial tail is timed so the stats' critical-path model
	// charges it to every worker.
	uf, mergeCrit, mergeWall := mergeUnionFindsCrit(ufs)
	t0 := time.Now()
	next := labelComponents(uf, res.Labels, func(p int) bool { return core[p] })
	labels := res.Labels
	for _, bl := range borders {
		for _, be := range bl {
			c := labels[uf.Find(int(be.core))]
			if labels[be.border] == Noise || c < labels[be.border] {
				labels[be.border] = c
			}
		}
	}
	for _, flag := range core {
		if flag {
			res.CorePoints++
		}
	}
	res.NumClusters = int(next)
	tail := time.Since(t0).Nanoseconds()

	var cs network.ClusterStats
	cs.Add(st1)
	cs.Add(st2)
	res.Stats.RangeQueries = cs.RangeQueries
	res.Stats.Prune = cs.Prune
	res.Stats.CritNs = cs.CritNs + mergeCrit + tail
	res.Stats.WallNs = cs.WallNs + mergeWall + tail
	return res, nil
}

// epsLinkKernel labels via ck's EpsUnions pass with every point selected:
// the ε-Link clusters are exactly the connected components of the ε-graph.
func epsLinkKernel(ctx context.Context, g network.Graph, ck network.ClusterKernel, opts EpsLinkOptions, workers int) (*EpsLinkResult, error) {
	n := g.NumPoints()
	res := &EpsLinkResult{Labels: make([]int32, n)}
	ufs := make([]*unionfind.UF, workers)
	for w := range ufs {
		ufs[w] = unionfind.New(n)
	}
	st, err := ck.EpsUnions(ctx, opts.Eps, workers, nil, nil, ufs, nil)
	if err != nil {
		return nil, err
	}
	uf, mergeCrit, mergeWall := mergeUnionFindsCrit(ufs)

	// Label and count in one scan: components get labels by ascending
	// minimum member (labelComponents' order) while the member counts for
	// the min_sup filter accumulate in the same pass.
	t0 := time.Now()
	labels := res.Labels
	rootLab := make([]int32, n)
	for i := range rootLab {
		rootLab[i] = Noise
	}
	counts := make([]int32, 0, 64)
	next := int32(0)
	for p := range labels {
		r := uf.Find(p)
		l := rootLab[r]
		if l == Noise {
			l = next
			rootLab[r] = l
			next++
			counts = append(counts, 0)
		}
		labels[p] = l
		counts[l]++
	}
	res.ClustersFound = int(next)
	kept := int(next)
	if sup := int32(opts.MinSup); sup > 1 {
		kept = 0
		for _, c := range counts {
			if c >= sup {
				kept++
			}
		}
		if kept < res.ClustersFound {
			for i, l := range labels {
				if counts[l] < sup {
					labels[i] = Noise
				}
			}
		}
	}
	res.NumClusters = kept
	tail := time.Since(t0).Nanoseconds()

	res.Stats.RangeQueries = st.RangeQueries
	res.Stats.CritNs = st.CritNs + mergeCrit + tail
	res.Stats.WallNs = st.WallNs + mergeWall + tail
	return res, nil
}

// epsLinkFlat labels via lk's native sequential Fig. 6 traversal (the
// compiled snapshot's flat-array port) — the sequential dispatch target.
// The kernel applies the min_sup filter itself from the per-grow member
// counts, so there is no suppression epilogue here.
func epsLinkFlat(ctx context.Context, g network.Graph, lk network.EpsLinkKernel, opts EpsLinkOptions) (*EpsLinkResult, error) {
	n := g.NumPoints()
	res := &EpsLinkResult{Labels: make([]int32, n)}
	t0 := time.Now()
	found, kept, err := lk.EpsLinkLabels(ctx, opts.Eps, opts.MinSup, res.Labels)
	if err != nil {
		return nil, err
	}
	res.ClustersFound = found
	res.NumClusters = kept
	ns := time.Since(t0).Nanoseconds()
	res.Stats.CritNs = ns
	res.Stats.WallNs = ns
	return res, nil
}
