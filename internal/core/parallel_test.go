package core

import (
	"context"
	"errors"
	"testing"

	"netclus/internal/testnet"
)

// TestEpsLinkParallelMatchesSequential checks the tentpole determinism
// guarantee: Workers > 1 produces byte-identical labels.
func TestEpsLinkParallelMatchesSequential(t *testing.T) {
	net, _, err := testnet.RandomClustered(7, 120, 500, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, eps := range []float64{0.05, 0.15, 0.4} {
		seq, err := EpsLink(net, EpsLinkOptions{Eps: eps, MinSup: 3})
		if err != nil {
			t.Fatal(err)
		}
		par, err := EpsLink(net, EpsLinkOptions{Eps: eps, MinSup: 3, Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		if par.NumClusters != seq.NumClusters || par.ClustersFound != seq.ClustersFound {
			t.Fatalf("eps=%v: parallel found %d/%d clusters, sequential %d/%d",
				eps, par.NumClusters, par.ClustersFound, seq.NumClusters, seq.ClustersFound)
		}
		for i := range seq.Labels {
			if par.Labels[i] != seq.Labels[i] {
				t.Fatalf("eps=%v: label mismatch at point %d: parallel %d, sequential %d",
					eps, i, par.Labels[i], seq.Labels[i])
			}
		}
	}
}

func TestDBSCANParallelMatchesSequential(t *testing.T) {
	net, _, err := testnet.RandomClustered(11, 120, 500, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, minPts := range []int{2, 3, 5} {
		seq, err := DBSCAN(net, DBSCANOptions{Eps: 0.15, MinPts: minPts})
		if err != nil {
			t.Fatal(err)
		}
		par, err := DBSCAN(net, DBSCANOptions{Eps: 0.15, MinPts: minPts, Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		if par.NumClusters != seq.NumClusters || par.CorePoints != seq.CorePoints {
			t.Fatalf("minPts=%d: parallel %d clusters / %d cores, sequential %d / %d",
				minPts, par.NumClusters, par.CorePoints, seq.NumClusters, seq.CorePoints)
		}
		for i := range seq.Labels {
			if par.Labels[i] != seq.Labels[i] {
				t.Fatalf("minPts=%d: label mismatch at point %d: parallel %d, sequential %d",
					minPts, i, par.Labels[i], seq.Labels[i])
			}
			if par.Core[i] != seq.Core[i] {
				t.Fatalf("minPts=%d: core flag mismatch at point %d", minPts, i)
			}
		}
	}
}

func TestOPTICSParallelMatchesSequential(t *testing.T) {
	net, _, err := testnet.RandomClustered(13, 120, 400, 4)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := OPTICS(net, OPTICSOptions{Eps: 0.3, MinPts: 3})
	if err != nil {
		t.Fatal(err)
	}
	par, err := OPTICS(net, OPTICSOptions{Eps: 0.3, MinPts: 3, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(par.Order) != len(seq.Order) {
		t.Fatalf("order length %d != %d", len(par.Order), len(seq.Order))
	}
	for i := range seq.Order {
		if par.Order[i] != seq.Order[i] || par.Reach[i] != seq.Reach[i] {
			t.Fatalf("ordering mismatch at position %d: parallel (%d, %v), sequential (%d, %v)",
				i, par.Order[i], par.Reach[i], seq.Order[i], seq.Reach[i])
		}
	}
	for p := range seq.CoreDist {
		if par.CoreDist[p] != seq.CoreDist[p] {
			t.Fatalf("core distance mismatch at point %d", p)
		}
	}
	if par.Stats.RangeQueries != seq.Stats.RangeQueries {
		t.Fatalf("parallel issued %d range queries, sequential %d",
			par.Stats.RangeQueries, seq.Stats.RangeQueries)
	}
}

func TestKMedoidsWorkersMatchesSequential(t *testing.T) {
	net, _, err := testnet.RandomClustered(17, 100, 300, 3)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := KMedoids(net, KMedoidsOptions{K: 3, Restarts: 4})
	if err != nil {
		t.Fatal(err)
	}
	par, err := KMedoids(net, KMedoidsOptions{K: 3, Restarts: 4, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if par.R != seq.R {
		t.Fatalf("parallel R = %v, sequential R = %v", par.R, seq.R)
	}
	for i := range seq.Labels {
		if par.Labels[i] != seq.Labels[i] {
			t.Fatalf("label mismatch at point %d", i)
		}
	}
	for i := range seq.Medoids {
		if par.Medoids[i] != seq.Medoids[i] {
			t.Fatalf("medoid mismatch at slot %d", i)
		}
	}
}

// TestCancelledContext checks that every algorithm notices a pre-cancelled
// context and surfaces context.Canceled through its error chain.
func TestCancelledContext(t *testing.T) {
	net, _, err := testnet.RandomClustered(23, 120, 400, 4)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	runs := map[string]func() error{
		"EpsLink": func() error {
			_, err := EpsLinkCtx(ctx, net, EpsLinkOptions{Eps: 0.2})
			return err
		},
		"EpsLinkWorkers": func() error {
			_, err := EpsLinkCtx(ctx, net, EpsLinkOptions{Eps: 0.2, Workers: 4})
			return err
		},
		"DBSCAN": func() error {
			_, err := DBSCANCtx(ctx, net, DBSCANOptions{Eps: 0.2, MinPts: 3})
			return err
		},
		"DBSCANWorkers": func() error {
			_, err := DBSCANCtx(ctx, net, DBSCANOptions{Eps: 0.2, MinPts: 3, Workers: 4})
			return err
		},
		"OPTICS": func() error {
			_, err := OPTICSCtx(ctx, net, OPTICSOptions{Eps: 0.2, MinPts: 3})
			return err
		},
		"SingleLink": func() error {
			_, err := SingleLinkCtx(ctx, net, SingleLinkOptions{})
			return err
		},
		"KMedoids": func() error {
			_, err := KMedoidsCtx(ctx, net, KMedoidsOptions{K: 3})
			return err
		},
	}
	for name, run := range runs {
		if err := run(); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: got %v, want a context.Canceled chain", name, err)
		}
	}
}

// TestInvalidOptionsSentinel checks that every validation failure wraps
// ErrInvalidOptions.
func TestInvalidOptionsSentinel(t *testing.T) {
	net, err := testnet.Line(10, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	runs := map[string]func() error{
		"EpsLink":    func() error { _, err := EpsLink(net, EpsLinkOptions{}); return err },
		"DBSCAN":     func() error { _, err := DBSCAN(net, DBSCANOptions{Eps: 1, MinPts: 0}); return err },
		"OPTICS":     func() error { _, err := OPTICS(net, OPTICSOptions{}); return err },
		"SingleLink": func() error { _, err := SingleLink(net, SingleLinkOptions{Delta: -1}); return err },
		"KMedoids":   func() error { _, err := KMedoids(net, KMedoidsOptions{K: 0}); return err },
		"RepLink":    func() error { _, err := RepLink(net, RepLinkOptions{MaxReps: -1}); return err },
	}
	for name, run := range runs {
		if err := run(); !errors.Is(err, ErrInvalidOptions) {
			t.Errorf("%s: got %v, want an ErrInvalidOptions chain", name, err)
		}
	}
}
