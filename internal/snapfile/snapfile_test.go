package snapfile

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc64"
	"math"
	"reflect"
	"testing"
)

const (
	testMagic   = "SNPTEST1"
	testVersion = uint32(3)
)

func buildTestFile(t *testing.T) ([]byte, []Section, []byte) {
	t.Helper()
	meta := []byte("hello meta")
	sections := []Section{
		{ID: 1, Data: Int32Bytes([]int32{1, -2, 3, math.MaxInt32, math.MinInt32})},
		{ID: 2, Data: Float64Bytes([]float64{0, 1.5, -2.25, math.Inf(1)})},
		{ID: 7, Data: []byte("raw payload")},
		{ID: 9, Data: nil},
	}
	var buf bytes.Buffer
	n, err := Write(&buf, testMagic, testVersion, meta, sections)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("Write reported %d bytes, wrote %d", n, buf.Len())
	}
	return buf.Bytes(), sections, meta
}

func TestRoundTrip(t *testing.T) {
	data, sections, meta := buildTestFile(t)
	if int64(len(data))%PageSize != 0 {
		t.Fatalf("file length %d not page-granular", len(data))
	}
	f, err := Read(data, testMagic, testVersion)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(f.Meta, meta) {
		t.Fatalf("meta = %q, want %q", f.Meta, meta)
	}
	for _, s := range sections {
		got, ok := f.Section(s.ID)
		if !ok {
			t.Fatalf("section %d missing", s.ID)
		}
		if !bytes.Equal(got, s.Data) {
			t.Fatalf("section %d payload differs", s.ID)
		}
	}
	if _, ok := f.Section(42); ok {
		t.Fatal("phantom section 42 present")
	}

	i32, err := Int32s(mustSection(t, f, 1), 5)
	if err != nil {
		t.Fatal(err)
	}
	if want := []int32{1, -2, 3, math.MaxInt32, math.MinInt32}; !reflect.DeepEqual(i32, want) {
		t.Fatalf("Int32s = %v, want %v", i32, want)
	}
	f64, err := Float64s(mustSection(t, f, 2), 4)
	if err != nil {
		t.Fatal(err)
	}
	if want := []float64{0, 1.5, -2.25, math.Inf(1)}; !reflect.DeepEqual(f64, want) {
		t.Fatalf("Float64s = %v, want %v", f64, want)
	}
}

func mustSection(t *testing.T, f *File, id uint32) []byte {
	t.Helper()
	b, ok := f.Section(id)
	if !ok {
		t.Fatalf("section %d missing", id)
	}
	return b
}

func TestTypedErrors(t *testing.T) {
	data, _, _ := buildTestFile(t)

	if _, err := Read(data, "WRONGMAG", testVersion); !errors.Is(err, ErrMagic) {
		t.Fatalf("wrong magic: got %v, want ErrMagic", err)
	}
	if _, err := Read(data, testMagic, testVersion+1); !errors.Is(err, ErrVersion) {
		t.Fatalf("wrong version: got %v, want ErrVersion", err)
	}

	// Truncation at every structurally interesting prefix must yield a typed
	// error, never a panic or a nil error.
	cuts := []int{0, 1, 7, 8, 16, headerSize - 1, headerSize, headerSize + 4, len(data) / 2, len(data) - 1}
	for _, n := range cuts {
		if n > len(data) {
			continue
		}
		_, err := Read(data[:n], testMagic, testVersion)
		if n >= len(data) {
			continue
		}
		if err == nil {
			t.Fatalf("truncation to %d bytes read successfully", n)
		}
		if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrChecksum) && !errors.Is(err, ErrMagic) {
			t.Fatalf("truncation to %d bytes: untyped error %v", n, err)
		}
	}

	// A flipped byte anywhere in the file must surface as a checksum or
	// structural error (flips inside zero padding are invisible and fine, so
	// sample the regions that matter: header, meta+table, payloads).
	flip := func(at int) error {
		mut := append([]byte(nil), data...)
		mut[at] ^= 0x40
		_, err := Read(mut, testMagic, testVersion)
		return err
	}
	for _, at := range []int{9, 13, 17, 24, headerSize, headerSize + 12, headerSize + 40, PageSize, PageSize + 9, 2 * PageSize} {
		if at >= len(data) {
			continue
		}
		err := flip(at)
		if err == nil {
			t.Fatalf("byte flip at %d read successfully", at)
		}
		if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrChecksum) && !errors.Is(err, ErrVersion) && !errors.Is(err, ErrMagic) {
			t.Fatalf("byte flip at %d: untyped error %v", at, err)
		}
	}
}

func TestSectionTableBounds(t *testing.T) {
	data, _, _ := buildTestFile(t)
	// Point section 0's offset beyond EOF, fixing up the header checksum so
	// only the bounds check can catch it.
	mut := append([]byte(nil), data...)
	metaLen := binary.LittleEndian.Uint32(mut[16:])
	tableOff := headerSize + int(metaLen)
	binary.LittleEndian.PutUint64(mut[tableOff+8:], uint64(len(mut))+PageSize)
	rehash(mut)
	if _, err := Read(mut, testMagic, testVersion); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("out-of-bounds section: got %v, want ErrCorrupt", err)
	}

	// An unaligned section offset is structural corruption too.
	mut = append([]byte(nil), data...)
	binary.LittleEndian.PutUint64(mut[tableOff+8:], PageSize+1)
	rehash(mut)
	if _, err := Read(mut, testMagic, testVersion); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("unaligned section: got %v, want ErrCorrupt", err)
	}
}

// rehash recomputes the header checksum after a deliberate table mutation.
func rehash(data []byte) {
	nsec := binary.LittleEndian.Uint32(data[12:])
	metaLen := binary.LittleEndian.Uint32(data[16:])
	end := headerSize + int(metaLen) + int(nsec)*secEntrySize
	h := crc64.New(crcTable)
	h.Write(data[headerSize:end])
	binary.LittleEndian.PutUint64(data[24:], h.Sum64())
}

func TestValueCodecLengthChecks(t *testing.T) {
	if _, err := Int32s(make([]byte, 7), 2); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("short int32 payload: got %v, want ErrCorrupt", err)
	}
	if _, err := Float64s(make([]byte, 9), 1); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("short float64 payload: got %v, want ErrCorrupt", err)
	}
	// Misaligned views must fall back to copying, not fault.
	raw := make([]byte, 12+1)
	copy(raw[1:], Int32Bytes([]int32{5, 6, 7}))
	v, err := Int32s(raw[1:], 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(v, []int32{5, 6, 7}) {
		t.Fatalf("misaligned Int32s = %v", v)
	}
}

func TestWriteFileReadFile(t *testing.T) {
	path := t.TempDir() + "/x.snap"
	if err := WriteFile(path, testMagic, testVersion, []byte("m"), []Section{{ID: 3, Data: []byte("abc")}}); err != nil {
		t.Fatal(err)
	}
	f, err := ReadFile(path, testMagic, testVersion)
	if err != nil {
		t.Fatal(err)
	}
	if string(mustSection(t, f, 3)) != "abc" {
		t.Fatal("payload mismatch after WriteFile/ReadFile")
	}
	if _, err := ReadFile(t.TempDir()+"/missing.snap", testMagic, testVersion); err == nil {
		t.Fatal("missing file read successfully")
	}
}
