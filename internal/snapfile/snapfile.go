// Package snapfile is the durable container format shared by the compiled
// CSR snapshot file and the shard-set plan file: a little-endian, versioned,
// crc64-checksummed section file whose payloads start on 4 KiB page
// boundaries, so a loader can mmap the file (or read it whole) and hand the
// int32/float64 arrays straight to the kernels as zero-copy slice views.
//
// Layout:
//
//	header   (32 B)  magic[8] | version u32 | nsec u32 | metaLen u32 |
//	                 reserved u32 | crc64(meta ++ table) u64
//	meta     (metaLen B, format-private)
//	table    (nsec × 32 B)  id u32 | reserved u32 | off u64 | size u64 |
//	                        crc64(payload) u64
//	payloads (each starting at a multiple of PageSize, zero-padded between)
//
// Every read validates magic, version, bounds and all checksums before any
// payload is interpreted, and failures come back as one of the typed errors
// below (never a panic, never silently misread data).
package snapfile

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
	"io"
	"math"
	"os"
	"unsafe"
)

// Typed failure modes of Read, distinguishable with errors.Is.
var (
	// ErrMagic marks a file that is not a snapshot of the expected kind.
	ErrMagic = errors.New("snapfile: bad magic")
	// ErrVersion marks a snapshot written by an incompatible format version.
	ErrVersion = errors.New("snapfile: unsupported snapshot version")
	// ErrChecksum marks payload or header bytes that fail their crc64.
	ErrChecksum = errors.New("snapfile: checksum mismatch")
	// ErrCorrupt marks structural damage: truncation, out-of-bounds section
	// table entries, impossible lengths.
	ErrCorrupt = errors.New("snapfile: corrupt or truncated snapshot")
)

const (
	// PageSize is the alignment of every section payload within the file.
	PageSize = 4096

	headerSize   = 32
	secEntrySize = 32
)

var crcTable = crc64.MakeTable(crc64.ECMA)

// Section is one payload to be written: an application-chosen ID (unique
// within the file) and its raw bytes.
type Section struct {
	ID   uint32
	Data []byte
}

// File is a parsed, fully checksum-verified snapshot container. Meta and the
// section payloads alias the byte slice given to Read.
type File struct {
	Meta     []byte
	sections map[uint32][]byte
}

// Section returns the payload of the section with the given ID.
func (f *File) Section(id uint32) ([]byte, bool) {
	b, ok := f.sections[id]
	return b, ok
}

func align(n int64) int64 {
	return (n + PageSize - 1) &^ (PageSize - 1)
}

// Write emits a snapshot container to w and returns the bytes written.
// magic must be exactly 8 bytes and should name the embedding format.
func Write(w io.Writer, magic string, version uint32, meta []byte, sections []Section) (int64, error) {
	if len(magic) != 8 {
		return 0, fmt.Errorf("snapfile: magic must be 8 bytes, got %d", len(magic))
	}
	table := make([]byte, len(sections)*secEntrySize)
	off := align(int64(headerSize+len(meta)) + int64(len(table)))
	for i, s := range sections {
		e := table[i*secEntrySize:]
		binary.LittleEndian.PutUint32(e[0:], s.ID)
		binary.LittleEndian.PutUint64(e[8:], uint64(off))
		binary.LittleEndian.PutUint64(e[16:], uint64(len(s.Data)))
		binary.LittleEndian.PutUint64(e[24:], crc64.Checksum(s.Data, crcTable))
		off = align(off + int64(len(s.Data)))
	}

	hdr := make([]byte, headerSize)
	copy(hdr, magic)
	binary.LittleEndian.PutUint32(hdr[8:], version)
	binary.LittleEndian.PutUint32(hdr[12:], uint32(len(sections)))
	binary.LittleEndian.PutUint32(hdr[16:], uint32(len(meta)))
	h := crc64.New(crcTable)
	h.Write(meta)
	h.Write(table)
	binary.LittleEndian.PutUint64(hdr[24:], h.Sum64())

	cw := countWriter{w: w}
	cw.write(hdr)
	cw.write(meta)
	cw.write(table)
	for _, s := range sections {
		cw.pad(align(cw.n) - cw.n)
		cw.write(s.Data)
	}
	cw.pad(align(cw.n) - cw.n) // trailing pad keeps the file page-granular
	return cw.n, cw.err
}

// WriteFile writes the container to path via Write, replacing any existing
// file atomically-enough for our use (write then rename).
func WriteFile(path, magic string, version uint32, meta []byte, sections []Section) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := Write(f, magic, version, meta, sections); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// Read parses and verifies a snapshot container held in data. The returned
// File aliases data; callers must not mutate it afterwards.
func Read(data []byte, magic string, version uint32) (*File, error) {
	if len(magic) != 8 {
		return nil, fmt.Errorf("snapfile: magic must be 8 bytes, got %d", len(magic))
	}
	if len(data) < headerSize {
		return nil, fmt.Errorf("%w: %d bytes is smaller than the %d-byte header", ErrCorrupt, len(data), headerSize)
	}
	if string(data[:8]) != magic {
		return nil, fmt.Errorf("%w: got %q, want %q", ErrMagic, data[:8], magic)
	}
	if v := binary.LittleEndian.Uint32(data[8:]); v != version {
		return nil, fmt.Errorf("%w: file has version %d, this build reads %d", ErrVersion, v, version)
	}
	nsec := binary.LittleEndian.Uint32(data[12:])
	metaLen := binary.LittleEndian.Uint32(data[16:])
	tableOff := uint64(headerSize) + uint64(metaLen)
	tableEnd := tableOff + uint64(nsec)*secEntrySize
	if tableEnd > uint64(len(data)) {
		return nil, fmt.Errorf("%w: header claims %d meta bytes + %d sections beyond the %d-byte file",
			ErrCorrupt, metaLen, nsec, len(data))
	}
	meta := data[headerSize:tableOff:tableOff]
	table := data[tableOff:tableEnd]
	h := crc64.New(crcTable)
	h.Write(meta)
	h.Write(table)
	if h.Sum64() != binary.LittleEndian.Uint64(data[24:]) {
		return nil, fmt.Errorf("%w: header", ErrChecksum)
	}

	f := &File{Meta: meta, sections: make(map[uint32][]byte, nsec)}
	for i := 0; i < int(nsec); i++ {
		e := table[i*secEntrySize:]
		id := binary.LittleEndian.Uint32(e[0:])
		off := binary.LittleEndian.Uint64(e[8:])
		size := binary.LittleEndian.Uint64(e[16:])
		sum := binary.LittleEndian.Uint64(e[24:])
		if off%PageSize != 0 {
			return nil, fmt.Errorf("%w: section %d starts at unaligned offset %d", ErrCorrupt, id, off)
		}
		if off > uint64(len(data)) || size > uint64(len(data))-off {
			return nil, fmt.Errorf("%w: section %d spans [%d, %d) beyond the %d-byte file",
				ErrCorrupt, id, off, off+size, len(data))
		}
		if _, dup := f.sections[id]; dup {
			return nil, fmt.Errorf("%w: duplicate section id %d", ErrCorrupt, id)
		}
		payload := data[off : off+size : off+size]
		if crc64.Checksum(payload, crcTable) != sum {
			return nil, fmt.Errorf("%w: section %d", ErrChecksum, id)
		}
		f.sections[id] = payload
	}
	return f, nil
}

// ReadFile loads path into memory and parses it with Read. The page-aligned
// layout would equally support mmap; reading the file whole keeps the loader
// portable and still performs zero decoding work on the array sections.
func ReadFile(path, magic string, version uint32) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Read(data, magic, version)
}

type countWriter struct {
	w   io.Writer
	n   int64
	err error
}

func (c *countWriter) write(b []byte) {
	if c.err != nil || len(b) == 0 {
		return
	}
	n, err := c.w.Write(b)
	c.n += int64(n)
	c.err = err
}

var zeros [PageSize]byte

func (c *countWriter) pad(n int64) {
	for n > 0 && c.err == nil {
		chunk := n
		if chunk > PageSize {
			chunk = PageSize
		}
		c.write(zeros[:chunk])
		n -= chunk
	}
}

// hostLittle reports whether this machine stores integers little-endian —
// the on-disk byte order — enabling the zero-copy slice views below.
var hostLittle = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// Int32s interprets a section payload as count little-endian int32 values.
// On little-endian hosts with aligned payloads this is a zero-copy view of
// the file bytes; otherwise the values are decoded into a fresh slice.
func Int32s(b []byte, count int) ([]int32, error) {
	if count < 0 || len(b) != count*4 {
		return nil, fmt.Errorf("%w: section holds %d bytes, want %d int32 values (%d bytes)",
			ErrCorrupt, len(b), count, count*4)
	}
	if count == 0 {
		return nil, nil
	}
	if hostLittle && uintptr(unsafe.Pointer(&b[0]))%4 == 0 {
		return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), count), nil
	}
	out := make([]int32, count)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return out, nil
}

// Float64s interprets a section payload as count little-endian float64
// values, zero-copy on little-endian hosts like Int32s.
func Float64s(b []byte, count int) ([]float64, error) {
	if count < 0 || len(b) != count*8 {
		return nil, fmt.Errorf("%w: section holds %d bytes, want %d float64 values (%d bytes)",
			ErrCorrupt, len(b), count, count*8)
	}
	if count == 0 {
		return nil, nil
	}
	if hostLittle && uintptr(unsafe.Pointer(&b[0]))%8 == 0 {
		return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), count), nil
	}
	out := make([]float64, count)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out, nil
}

// Int32Bytes returns v's bytes in file order, zero-copy on little-endian
// hosts. The view aliases v; it is only valid while v is live and unchanged.
func Int32Bytes(v []int32) []byte {
	if len(v) == 0 {
		return nil
	}
	if hostLittle {
		return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), len(v)*4)
	}
	out := make([]byte, len(v)*4)
	for i, x := range v {
		binary.LittleEndian.PutUint32(out[i*4:], uint32(x))
	}
	return out
}

// Float64Bytes returns v's bytes in file order, zero-copy on little-endian
// hosts.
func Float64Bytes(v []float64) []byte {
	if len(v) == 0 {
		return nil
	}
	if hostLittle {
		return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), len(v)*8)
	}
	out := make([]byte, len(v)*8)
	for i, x := range v {
		binary.LittleEndian.PutUint64(out[i*8:], math.Float64bits(x))
	}
	return out
}
