package unionfind

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBasics(t *testing.T) {
	u := New(5)
	if u.Len() != 5 || u.Sets() != 5 {
		t.Fatalf("fresh forest: len %d, sets %d", u.Len(), u.Sets())
	}
	if _, merged := u.Union(0, 1); !merged {
		t.Fatal("first union must merge")
	}
	if _, merged := u.Union(1, 0); merged {
		t.Fatal("repeated union must not merge")
	}
	if !u.SameSet(0, 1) || u.SameSet(0, 2) {
		t.Fatal("SameSet wrong")
	}
	if u.Sets() != 4 {
		t.Fatalf("sets %d, want 4", u.Sets())
	}
	if u.Size(0) != 2 || u.Size(2) != 1 {
		t.Fatalf("sizes %d, %d", u.Size(0), u.Size(2))
	}
	if i := u.Grow(); i != 5 || u.Sets() != 5 {
		t.Fatalf("grow gave %d, sets %d", i, u.Sets())
	}
}

// TestAgainstNaiveModel drives random unions against a quadratic label
// model.
func TestAgainstNaiveModel(t *testing.T) {
	const n = 120
	rnd := rand.New(rand.NewSource(2))
	prop := func(ops []uint16) bool {
		u := New(n)
		label := make([]int, n)
		for i := range label {
			label[i] = i
		}
		for _, op := range ops {
			a, b := int(op)%n, int(op>>8)%n
			u.Union(a, b)
			la, lb := label[a], label[b]
			if la != lb {
				for i := range label {
					if label[i] == lb {
						label[i] = la
					}
				}
			}
		}
		sets := map[int]bool{}
		for i := 0; i < n; i++ {
			sets[label[i]] = true
			for j := i + 1; j < n; j++ {
				if (label[i] == label[j]) != u.SameSet(i, j) {
					return false
				}
			}
			if sz := u.Size(i); sz != count(label, label[i]) {
				return false
			}
		}
		return len(sets) == u.Sets()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60, Rand: rnd}); err != nil {
		t.Fatal(err)
	}
}

func count(xs []int, v int) int {
	n := 0
	for _, x := range xs {
		if x == v {
			n++
		}
	}
	return n
}

func TestUnionReturnsRoot(t *testing.T) {
	u := New(10)
	root, _ := u.Union(3, 7)
	if u.Find(3) != root || u.Find(7) != root {
		t.Fatal("returned root is not the set representative")
	}
}
