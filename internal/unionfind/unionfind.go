// Package unionfind implements disjoint-set forests with union by size and
// path compression. The Single-Link algorithm uses it for cluster merging
// (the paper's "weighted-union heuristic", §4.4.1 footnote).
package unionfind

// UF is a disjoint-set forest over elements 0..n-1.
type UF struct {
	parent []int32
	size   []int32
	sets   int
}

// New returns a forest of n singleton sets.
func New(n int) *UF {
	u := &UF{parent: make([]int32, n), size: make([]int32, n), sets: n}
	for i := range u.parent {
		u.parent[i] = int32(i)
		u.size[i] = 1
	}
	return u
}

// Len returns the number of elements in the forest.
func (u *UF) Len() int { return len(u.parent) }

// Sets returns the current number of disjoint sets.
func (u *UF) Sets() int { return u.sets }

// Find returns the canonical representative of x's set.
func (u *UF) Find(x int) int {
	root := int32(x)
	for u.parent[root] != root {
		root = u.parent[root]
	}
	// Path compression.
	for int32(x) != root {
		next := u.parent[x]
		u.parent[x] = root
		x = int(next)
	}
	return int(root)
}

// Union merges the sets containing x and y and returns the representative of
// the merged set. It reports whether a merge actually happened (false when x
// and y were already in the same set).
func (u *UF) Union(x, y int) (root int, merged bool) {
	rx, ry := u.Find(x), u.Find(y)
	if rx == ry {
		return rx, false
	}
	// Union by size: attach the smaller tree under the larger.
	if u.size[rx] < u.size[ry] {
		rx, ry = ry, rx
	}
	u.parent[ry] = int32(rx)
	u.size[rx] += u.size[ry]
	u.sets--
	return rx, true
}

// SameSet reports whether x and y belong to the same set.
func (u *UF) SameSet(x, y int) bool { return u.Find(x) == u.Find(y) }

// Size returns the number of elements in x's set.
func (u *UF) Size(x int) int { return int(u.size[u.Find(x)]) }

// Grow appends one new singleton element and returns its index.
func (u *UF) Grow() int {
	i := len(u.parent)
	u.parent = append(u.parent, int32(i))
	u.size = append(u.size, 1)
	u.sets++
	return i
}

// MergeInto folds u's partition into dst: after the call, any two elements
// joined in u are joined in dst too. Only the parent edges are replayed —
// one union per non-root element — so merging a shard whose sets are mostly
// singletons costs little more than a scan.
func (u *UF) MergeInto(dst *UF) {
	for i, p := range u.parent {
		if int32(i) != p {
			dst.Union(i, int(p))
		}
	}
}
