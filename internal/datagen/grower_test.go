package datagen

import (
	"math"
	"math/rand"
	"testing"

	"netclus/internal/network"
)

// TestGeneratorDeterministic: identical seeds produce identical datasets.
func TestGeneratorDeterministic(t *testing.T) {
	mk := func() *network.Network {
		rng := rand.New(rand.NewSource(42))
		base, err := GridNetwork(15, 15, 1.0, 0.3, 40, rng)
		if err != nil {
			t.Fatal(err)
		}
		g, err := GeneratePoints(base, DefaultClusterConfig(500, 4, 0.05), rng)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	a, b := mk(), mk()
	if a.NumPoints() != b.NumPoints() {
		t.Fatalf("point counts differ: %d vs %d", a.NumPoints(), b.NumPoints())
	}
	for p := 0; p < a.NumPoints(); p++ {
		pa, err := a.PointInfo(network.PointID(p))
		if err != nil {
			t.Fatal(err)
		}
		pb, err := b.PointInfo(network.PointID(p))
		if err != nil {
			t.Fatal(err)
		}
		if pa != pb {
			t.Fatalf("point %d differs: %+v vs %+v", p, pa, pb)
		}
	}
}

// TestClusterGapsBounded: consecutive generated points within a cluster are
// spaced within the generator's [0.5 s, 1.5 s_max] envelope along their
// edges (the property ε = 1.5 s_init F relies on).
func TestClusterGapsBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	base, err := GridNetwork(25, 25, 1.0, 0.2, 80, rng)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultClusterConfig(800, 3, 0.05)
	g, err := GeneratePoints(base, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	maxGap := 1.5 * cfg.SInit * cfg.F
	violations := 0
	err = g.ScanGroups(func(gid network.GroupID, pg network.PointGroup, off []float64) error {
		for i := 1; i < len(off); i++ {
			a := g.Tag(pg.First + network.PointID(i-1))
			b := g.Tag(pg.First + network.PointID(i))
			if a == b && a >= 0 && off[i]-off[i-1] > maxGap+1e-9 {
				violations++
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Same-edge same-cluster gaps beyond the envelope can only come from a
	// cluster revisiting an edge through a different route; they must be
	// rare.
	if violations > g.NumPoints()/50 {
		t.Fatalf("%d same-edge gap violations out of %d points", violations, g.NumPoints())
	}
}

// TestSeedSeparationRelaxation: asking for more clusters than separated
// seats exist must still succeed via progressive relaxation.
func TestSeedSeparationRelaxation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	base, err := GridNetwork(4, 4, 1.0, 0.1, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultClusterConfig(64, 16, 0.05) // 16 clusters on a 16-node grid
	g, err := GeneratePoints(base, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumPoints() == 0 {
		t.Fatal("no points generated")
	}
}

// TestGeneratorOnWeightlessCoords: a base without an embedding disables the
// Euclidean seed separation but must still work.
func TestGeneratorOnCoordFreeBase(t *testing.T) {
	b := network.NewBuilder()
	b.AddNodes(12)
	for i := 0; i < 11; i++ {
		b.AddEdge(network.NodeID(i), network.NodeID(i+1), 5)
	}
	base, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	g, err := GeneratePoints(base, DefaultClusterConfig(60, 3, 0.2), rng)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumPoints() != 60 {
		t.Fatalf("%d points", g.NumPoints())
	}
	for p := 0; p < g.NumPoints(); p++ {
		pi, err := g.PointInfo(network.PointID(p))
		if err != nil {
			t.Fatal(err)
		}
		if math.IsNaN(pi.Pos) || pi.Pos < 0 || pi.Pos > pi.Weight {
			t.Fatalf("point %d out of range: %+v", p, pi)
		}
	}
}

// TestClusterExhaustsTinyNetwork: a cluster bigger than the network's
// carrying capacity stops gracefully with fewer points.
func TestClusterExhaustsTinyNetwork(t *testing.T) {
	b := network.NewBuilder()
	b.AddNodes(2)
	b.AddEdge(0, 1, 1)
	base, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	cfg := ClusterConfig{NumPoints: 1000, K: 1, SInit: 0.5, F: 5}
	g, err := GeneratePoints(base, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumPoints() == 0 || g.NumPoints() > 1000 {
		t.Fatalf("%d points on a single unit edge", g.NumPoints())
	}
}
