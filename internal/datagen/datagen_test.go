package datagen

import (
	"math"
	"math/rand"
	"testing"

	"netclus/internal/network"
)

func TestGridNetworkShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g, err := GridNetwork(10, 12, 1.0, 0.3, 20, rng)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 120 {
		t.Fatalf("%d nodes, want 120", g.NumNodes())
	}
	if g.NumEdges() != 119+20 {
		t.Fatalf("%d edges, want %d", g.NumEdges(), 139)
	}
	if ok, _ := network.IsConnected(g); !ok {
		t.Fatal("grid not connected")
	}
	if !g.HasCoords() {
		t.Fatal("grid should carry coordinates")
	}
	// Weights are positive Euclidean distances.
	for u := 0; u < g.NumNodes(); u++ {
		adj, err := g.Neighbors(network.NodeID(u))
		if err != nil {
			t.Fatal(err)
		}
		for _, nb := range adj {
			if !(nb.Weight > 0) {
				t.Fatalf("edge (%d,%d) weight %v", u, nb.Node, nb.Weight)
			}
		}
	}
}

func TestGridNetworkValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := GridNetwork(0, 5, 1, 0, 0, rng); err == nil {
		t.Fatal("want error for 0 rows")
	}
	if _, err := GridNetwork(5, 5, -1, 0, 0, rng); err == nil {
		t.Fatal("want error for negative spacing")
	}
	// extraEdges beyond the pool is clamped, not an error.
	g, err := GridNetwork(3, 3, 1, 0, 10000, rng)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 12 { // full 3x3 lattice
		t.Fatalf("%d edges, want 12", g.NumEdges())
	}
}

func TestBuilderShapes(t *testing.T) {
	if _, err := RingBuilder(2, 1); err == nil {
		t.Fatal("ring of 2 must fail")
	}
	rb, err := RingBuilder(6, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	ring, err := rb.Build()
	if err != nil {
		t.Fatal(err)
	}
	if ring.NumNodes() != 6 || ring.NumEdges() != 6 {
		t.Fatal("ring shape wrong")
	}
	// Distance halfway around a 6-ring: 3 edges * 2.5.
	d, err := network.NodeToNodeDistance(ring, 0, 3)
	if err != nil || math.Abs(d-7.5) > 1e-12 {
		t.Fatalf("ring distance %v, %v", d, err)
	}

	pb, err := PathBuilder(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	path, err := pb.Build()
	if err != nil || path.NumEdges() != 3 {
		t.Fatal("path shape wrong")
	}
	if _, err := PathBuilder(1, 1); err == nil {
		t.Fatal("path of 1 must fail")
	}

	sb, err := StarBuilder(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	star, err := sb.Build()
	if err != nil || star.NumNodes() != 6 || star.NumEdges() != 5 {
		t.Fatal("star shape wrong")
	}
	if _, err := StarBuilder(0, 1); err == nil {
		t.Fatal("star of 0 must fail")
	}
}

func TestGeneratePointsGroundTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	base, err := GridNetwork(20, 20, 1.0, 0.3, 100, rng)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultClusterConfig(1000, 5, 0.05)
	g, err := GeneratePoints(base, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumPoints() != 1000 {
		t.Fatalf("%d points, want 1000", g.NumPoints())
	}
	counts := map[int32]int{}
	for _, tag := range g.Tags() {
		counts[tag]++
	}
	if counts[OutlierTag] != 10 { // 1% of 1000
		t.Fatalf("%d outliers, want 10", counts[OutlierTag])
	}
	for c := int32(0); c < 5; c++ {
		if counts[c] != 198 {
			t.Fatalf("cluster %d has %d points, want 198", c, counts[c])
		}
	}
	// All points lie within their edges.
	for p := 0; p < g.NumPoints(); p++ {
		pi, err := g.PointInfo(network.PointID(p))
		if err != nil {
			t.Fatal(err)
		}
		if pi.Pos < 0 || pi.Pos > pi.Weight {
			t.Fatalf("point %d outside edge: %+v", p, pi)
		}
	}
}

func TestGeneratePointsValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	base, err := GridNetwork(4, 4, 1, 0, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	bad := []ClusterConfig{
		{NumPoints: 0, K: 1, SInit: 1, F: 5},
		{NumPoints: 10, K: 0, SInit: 1, F: 5},
		{NumPoints: 10, K: 1, SInit: 0, F: 5},
		{NumPoints: 10, K: 1, SInit: 1, F: 0.5},
		{NumPoints: 10, K: 1, SInit: 1, F: 5, OutlierFrac: 1.5},
	}
	for i, cfg := range bad {
		if _, err := GeneratePoints(base, cfg, rng); err == nil {
			t.Fatalf("case %d: want validation error", i)
		}
	}
	// Base with points is rejected.
	withPts, err := GenerateUniform(base, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := GeneratePoints(withPts, DefaultClusterConfig(10, 1, 1), rng); err == nil {
		t.Fatal("want error for populated base")
	}
}

func TestGenerateUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	base, err := GridNetwork(8, 8, 1, 0.2, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	g, err := GenerateUniform(base, 200, rng)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumPoints() != 200 {
		t.Fatalf("%d points", g.NumPoints())
	}
}

func TestConfigDerivedParameters(t *testing.T) {
	cfg := DefaultClusterConfig(100, 4, 2.0)
	if cfg.F != 5 || cfg.OutlierFrac != 0.01 {
		t.Fatalf("defaults wrong: %+v", cfg)
	}
	if cfg.Eps() != 1.5*2.0*5 {
		t.Fatalf("Eps %v", cfg.Eps())
	}
	if math.Abs(cfg.Delta()-0.7*cfg.Eps()) > 1e-12 {
		t.Fatalf("Delta %v", cfg.Delta())
	}
}

func TestRoadNetworksDeterministicAndSized(t *testing.T) {
	for _, spec := range Roads {
		g1, err := RoadNetwork(spec.Name, 0.02)
		if err != nil {
			t.Fatal(err)
		}
		g2, err := RoadNetwork(spec.Name, 0.02)
		if err != nil {
			t.Fatal(err)
		}
		if g1.NumNodes() != g2.NumNodes() || g1.NumEdges() != g2.NumEdges() {
			t.Fatalf("%s not deterministic", spec.Name)
		}
		want := int(float64(spec.Nodes) * 0.02)
		if want < 64 {
			want = 64
		}
		if g1.NumNodes() != want {
			t.Fatalf("%s: %d nodes, want %d", spec.Name, g1.NumNodes(), want)
		}
		if ok, _ := network.IsConnected(g1); !ok {
			t.Fatalf("%s stand-in disconnected", spec.Name)
		}
		// Edge/node ratio within 25% of the real network's.
		wantRatio := float64(spec.Edges) / float64(spec.Nodes)
		gotRatio := float64(g1.NumEdges()) / float64(g1.NumNodes())
		if gotRatio < wantRatio*0.75 || gotRatio > wantRatio*1.25 {
			t.Fatalf("%s: edge ratio %.3f, want ~%.3f", spec.Name, gotRatio, wantRatio)
		}
	}
	if _, err := RoadNetwork("XX", 0.1); err == nil {
		t.Fatal("want error for unknown network")
	}
	if _, err := RoadNetwork("OL", 0); err == nil {
		t.Fatal("want error for scale 0")
	}
	if _, err := RoadNetwork("OL", 2); err != nil {
		t.Fatalf("scale 2 (above the paper's size) must work: %v", err)
	}
	if _, err := RoadNetwork("OL", MaxScale+1); err == nil {
		t.Fatal("want error for scale > MaxScale")
	}
}

func TestRoadDataset(t *testing.T) {
	g, cfg, err := RoadDataset("OL", 0.05, 5)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumPoints() < 100 {
		t.Fatalf("%d points", g.NumPoints())
	}
	if cfg.K != 5 || cfg.Eps() <= 0 {
		t.Fatalf("config %+v", cfg)
	}
	if _, _, err := RoadDataset("nope", 0.05, 5); err == nil {
		t.Fatal("want error for unknown name")
	}
}
