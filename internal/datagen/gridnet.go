// Package datagen generates the workloads of the paper's evaluation (§5):
// road-like spatial networks (stand-ins for the NA / SF / TG / OL datasets,
// see DESIGN.md substitution table) and the synthetic cluster generator with
// initial separation s_init, magnification factor F and 1% outliers.
// Everything is deterministic given the caller's *rand.Rand.
package datagen

import (
	"fmt"
	"math"
	"math/rand"

	"netclus/internal/network"
)

// GridNetwork builds a connected, near-planar road-like network: a
// rows x cols lattice with jittered node coordinates, where a random spanning
// tree is always kept and each remaining lattice edge survives independently
// so that approximately extraEdges of them remain. Edge weights are the
// Euclidean distances of their endpoints, as in the paper's experiments.
//
// The result has rows*cols nodes and (rows*cols - 1) + ~extraEdges edges.
func GridNetwork(rows, cols int, spacing, jitter float64, extraEdges int, rng *rand.Rand) (*network.Network, error) {
	if rows < 1 || cols < 1 {
		return nil, fmt.Errorf("datagen: grid %dx%d too small", rows, cols)
	}
	if spacing <= 0 {
		return nil, fmt.Errorf("datagen: non-positive spacing %v", spacing)
	}
	n := rows * cols
	b := network.NewBuilder()
	coords := make([]network.Coord, n)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			jx := (rng.Float64() - 0.5) * jitter * spacing
			jy := (rng.Float64() - 0.5) * jitter * spacing
			coords[r*cols+c] = network.Coord{X: float64(c)*spacing + jx, Y: float64(r)*spacing + jy}
			b.AddNode(coords[r*cols+c])
		}
	}

	// All lattice edges.
	type edge struct{ u, v int }
	var all []edge
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			id := r*cols + c
			if c+1 < cols {
				all = append(all, edge{id, id + 1})
			}
			if r+1 < rows {
				all = append(all, edge{id, id + cols})
			}
		}
	}
	rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })

	// Randomized Kruskal: the first edges joining distinct components form a
	// uniform-ish random spanning tree; the rest are optional extras.
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	var extras []edge
	added := 0
	for _, e := range all {
		ru, rv := find(e.u), find(e.v)
		if ru != rv {
			parent[ru] = rv
			b.AddEdge(network.NodeID(e.u), network.NodeID(e.v), dist(coords[e.u], coords[e.v]))
			added++
		} else {
			extras = append(extras, edge{e.u, e.v})
		}
	}
	if extraEdges > len(extras) {
		extraEdges = len(extras)
	}
	for _, e := range extras[:extraEdges] {
		b.AddEdge(network.NodeID(e.u), network.NodeID(e.v), dist(coords[e.u], coords[e.v]))
	}
	return b.Build()
}

func dist(a, b network.Coord) float64 {
	d := math.Hypot(a.X-b.X, a.Y-b.Y)
	if d <= 0 {
		d = 1e-9 // jitter collision: keep weights positive
	}
	return d
}

// RingBuilder returns a Builder pre-loaded with an n-node cycle whose edges
// all weigh w. Handy for unit tests (cf. the paper's Figure 2b ring example).
func RingBuilder(n int, w float64) (*network.Builder, error) {
	if n < 3 {
		return nil, fmt.Errorf("datagen: ring needs >= 3 nodes, got %d", n)
	}
	b := network.NewBuilder()
	for i := 0; i < n; i++ {
		angle := 2 * math.Pi * float64(i) / float64(n)
		b.AddNode(network.Coord{X: math.Cos(angle), Y: math.Sin(angle)})
	}
	for i := 0; i < n; i++ {
		b.AddEdge(network.NodeID(i), network.NodeID((i+1)%n), w)
	}
	return b, nil
}

// PathBuilder returns a Builder pre-loaded with an n-node path whose edges
// all weigh w.
func PathBuilder(n int, w float64) (*network.Builder, error) {
	if n < 2 {
		return nil, fmt.Errorf("datagen: path needs >= 2 nodes, got %d", n)
	}
	b := network.NewBuilder()
	for i := 0; i < n; i++ {
		b.AddNode(network.Coord{X: float64(i) * w, Y: 0})
	}
	for i := 0; i+1 < n; i++ {
		b.AddEdge(network.NodeID(i), network.NodeID(i+1), w)
	}
	return b, nil
}

// StarBuilder returns a Builder pre-loaded with a hub node 0 joined to n
// spokes 1..n by edges of weight w.
func StarBuilder(n int, w float64) (*network.Builder, error) {
	if n < 1 {
		return nil, fmt.Errorf("datagen: star needs >= 1 spoke, got %d", n)
	}
	b := network.NewBuilder()
	b.AddNode(network.Coord{})
	for i := 1; i <= n; i++ {
		angle := 2 * math.Pi * float64(i) / float64(n)
		b.AddNode(network.Coord{X: w * math.Cos(angle), Y: w * math.Sin(angle)})
		b.AddEdge(0, network.NodeID(i), w)
	}
	return b, nil
}

// RandomConnectedNetwork builds a connected network with exactly nodes nodes
// and approximately edges edges (edges >= nodes-1): a jittered grid trimmed
// to size. It is the generator behind testing/quick properties that want
// arbitrary sparse connected road-like graphs.
func RandomConnectedNetwork(nodes, edges int, rng *rand.Rand) (*network.Network, error) {
	if nodes < 2 {
		return nil, fmt.Errorf("datagen: need >= 2 nodes, got %d", nodes)
	}
	if edges < nodes-1 {
		return nil, fmt.Errorf("datagen: %d edges cannot connect %d nodes", edges, nodes)
	}
	side := int(math.Ceil(math.Sqrt(float64(nodes))))
	rows := (nodes + side - 1) / side
	g, err := GridNetwork(rows, side, 1.0, 0.4, edges, rng)
	if err != nil {
		return nil, err
	}
	// Trim to exactly `nodes` nodes while keeping connectivity.
	if g.NumNodes() > nodes {
		g, err = network.ExtractConnectedCount(g, 0, nodes)
		if err != nil {
			return nil, err
		}
	}
	return g, nil
}
