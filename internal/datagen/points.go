package datagen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"netclus/internal/heapx"
	"netclus/internal/network"
)

// OutlierTag is the point tag assigned to generated outliers; cluster members
// carry their 0-based cluster index.
const OutlierTag int32 = -1

// ClusterConfig parameterizes the paper's synthetic cluster generator (§5):
// N points of which 99% are evenly distributed to K clusters grown by
// network traversal and 1% are uniform outliers. Within a cluster the gap to
// the previous point is drawn from [0.5*s_cur, 1.5*s_cur] where s_cur grows
// linearly from SInit to SInit*F as the cluster fills — a dense core that
// gets sparser at its boundary.
type ClusterConfig struct {
	NumPoints   int     // total N, outliers included
	K           int     // number of clusters
	OutlierFrac float64 // fraction of uniform outliers (paper: 0.01)
	SInit       float64 // initial separation s_init
	F           float64 // magnification factor (paper: 5)
	// MinSeedSeparation is the minimum Euclidean distance between cluster
	// seed locations, used to keep generated clusters apart (the paper
	// relies on chance; a positive separation makes quality experiments
	// deterministic). Zero picks an automatic value from the network
	// extent; negative disables separation entirely.
	MinSeedSeparation float64
}

// DefaultClusterConfig returns the paper's standard workload shape for a
// given size: k clusters, 1% outliers, F = 5.
func DefaultClusterConfig(n, k int, sInit float64) ClusterConfig {
	return ClusterConfig{NumPoints: n, K: k, OutlierFrac: 0.01, SInit: sInit, F: 5}
}

// Eps is the minimal density threshold that discovers the generated clusters
// correctly: the paper uses ε = 1.5 * s_init * F (§5.1).
func (c ClusterConfig) Eps() float64 { return 1.5 * c.SInit * c.F }

// Delta is the Single-Link scalability-heuristic threshold the paper pairs
// with Eps in Table 2: δ = 0.7 * ε.
func (c ClusterConfig) Delta() float64 { return 0.7 * c.Eps() }

func (c ClusterConfig) validate() error {
	switch {
	case c.NumPoints < 1:
		return fmt.Errorf("datagen: NumPoints %d < 1", c.NumPoints)
	case c.K < 1:
		return fmt.Errorf("datagen: K %d < 1", c.K)
	case c.OutlierFrac < 0 || c.OutlierFrac >= 1:
		return fmt.Errorf("datagen: OutlierFrac %v outside [0,1)", c.OutlierFrac)
	case c.SInit <= 0:
		return fmt.Errorf("datagen: SInit %v <= 0", c.SInit)
	case c.F < 1:
		return fmt.Errorf("datagen: F %v < 1", c.F)
	}
	return nil
}

// edgeRec is one undirected edge of the base network.
type edgeRec struct {
	u, v network.NodeID
	w    float64
}

// GeneratePoints places cfg.NumPoints objects on base per the paper's
// generator and returns a new network carrying them. base must carry no
// points of its own. Ground truth travels in the point tags: cluster members
// are tagged with their cluster index, outliers with OutlierTag.
func GeneratePoints(base *network.Network, cfg ClusterConfig, rng *rand.Rand) (*network.Network, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if base.NumPoints() != 0 {
		return nil, fmt.Errorf("datagen: base network already carries %d points", base.NumPoints())
	}

	edges, totalLen, err := collectEdges(base)
	if err != nil {
		return nil, err
	}
	if len(edges) == 0 {
		return nil, fmt.Errorf("datagen: base network has no edges")
	}

	outliers := int(math.Round(cfg.OutlierFrac * float64(cfg.NumPoints)))
	clustered := cfg.NumPoints - outliers

	type spec struct {
		u, v network.NodeID
		pos  float64
		tag  int32
	}
	var pts []spec

	seeds, err := pickSeeds(base, edges, cfg, rng)
	if err != nil {
		return nil, err
	}

	g := &clusterGrower{
		base:    base,
		settled: make([]bool, base.NumNodes()),
		res:     make([]float64, base.NumNodes()),
	}
	for ci := 0; ci < cfg.K; ci++ {
		// Even split with the remainder spread over the first clusters.
		target := clustered / cfg.K
		if ci < clustered%cfg.K {
			target++
		}
		if target == 0 {
			continue
		}
		placed, err := g.grow(seeds[ci], target, cfg, rng)
		if err != nil {
			return nil, err
		}
		for _, p := range placed {
			pts = append(pts, spec{u: p.u, v: p.v, pos: p.pos, tag: int32(ci)})
		}
	}

	// Uniform outliers: edge chosen length-weighted, offset uniform.
	cum := make([]float64, len(edges))
	acc := 0.0
	for i, e := range edges {
		acc += e.w
		cum[i] = acc
	}
	_ = totalLen
	for i := 0; i < outliers; i++ {
		x := rng.Float64() * acc
		idx := sort.SearchFloat64s(cum, x)
		if idx >= len(edges) {
			idx = len(edges) - 1
		}
		e := edges[idx]
		pts = append(pts, spec{u: e.u, v: e.v, pos: rng.Float64() * e.w, tag: OutlierTag})
	}

	// Rebuild the network with the points attached.
	b := network.NewBuilder()
	for i := 0; i < base.NumNodes(); i++ {
		if base.HasCoords() {
			b.AddNode(base.Coord(network.NodeID(i)))
		} else {
			b.AddNode()
		}
	}
	for _, e := range edges {
		b.AddEdge(e.u, e.v, e.w)
	}
	for _, p := range pts {
		b.AddPoint(p.u, p.v, p.pos, p.tag)
	}
	return b.Build()
}

// GenerateUniform places n uniformly distributed points (length-weighted
// random edge, uniform offset), all tagged 0. Useful for non-clustered
// workloads in tests and ablations.
func GenerateUniform(base *network.Network, n int, rng *rand.Rand) (*network.Network, error) {
	edges, _, err := collectEdges(base)
	if err != nil {
		return nil, err
	}
	if len(edges) == 0 {
		return nil, fmt.Errorf("datagen: base network has no edges")
	}
	cum := make([]float64, len(edges))
	acc := 0.0
	for i, e := range edges {
		acc += e.w
		cum[i] = acc
	}
	b := network.NewBuilder()
	for i := 0; i < base.NumNodes(); i++ {
		if base.HasCoords() {
			b.AddNode(base.Coord(network.NodeID(i)))
		} else {
			b.AddNode()
		}
	}
	for _, e := range edges {
		b.AddEdge(e.u, e.v, e.w)
	}
	for i := 0; i < n; i++ {
		x := rng.Float64() * acc
		idx := sort.SearchFloat64s(cum, x)
		if idx >= len(edges) {
			idx = len(edges) - 1
		}
		e := edges[idx]
		b.AddPoint(e.u, e.v, rng.Float64()*e.w, 0)
	}
	return b.Build()
}

func collectEdges(base *network.Network) ([]edgeRec, float64, error) {
	var edges []edgeRec
	total := 0.0
	for u := 0; u < base.NumNodes(); u++ {
		adj, err := base.Neighbors(network.NodeID(u))
		if err != nil {
			return nil, 0, err
		}
		for _, nb := range adj {
			if network.NodeID(u) < nb.Node {
				edges = append(edges, edgeRec{u: network.NodeID(u), v: nb.Node, w: nb.Weight})
				total += nb.Weight
			}
		}
	}
	return edges, total, nil
}

// seed is the initial location of a cluster: an edge and an offset on it.
type seedLoc struct {
	e   edgeRec
	pos float64
}

// pickSeeds selects K seed locations, Euclidean-separated when the network
// has an embedding, with progressive relaxation so generation never fails.
func pickSeeds(base *network.Network, edges []edgeRec, cfg ClusterConfig, rng *rand.Rand) ([]seedLoc, error) {
	minSep := cfg.MinSeedSeparation
	if minSep == 0 && base.HasCoords() {
		minX, minY := math.Inf(1), math.Inf(1)
		maxX, maxY := math.Inf(-1), math.Inf(-1)
		for i := 0; i < base.NumNodes(); i++ {
			c := base.Coord(network.NodeID(i))
			minX, maxX = math.Min(minX, c.X), math.Max(maxX, c.X)
			minY, maxY = math.Min(minY, c.Y), math.Max(maxY, c.Y)
		}
		diag := math.Hypot(maxX-minX, maxY-minY)
		minSep = diag / (2 * math.Sqrt(float64(cfg.K)))
	}
	if !base.HasCoords() {
		minSep = -1
	}
	var seeds []seedLoc
	var coords []network.Coord
	for len(seeds) < cfg.K {
		tries := 0
		for {
			e := edges[rng.Intn(len(edges))]
			pos := rng.Float64() * e.w
			if minSep <= 0 {
				seeds = append(seeds, seedLoc{e: e, pos: pos})
				break
			}
			a, b := base.Coord(e.u), base.Coord(e.v)
			t := pos / e.w
			c := network.Coord{X: a.X + (b.X-a.X)*t, Y: a.Y + (b.Y-a.Y)*t}
			ok := true
			for _, prev := range coords {
				if math.Hypot(prev.X-c.X, prev.Y-c.Y) < minSep {
					ok = false
					break
				}
			}
			if ok {
				seeds = append(seeds, seedLoc{e: e, pos: pos})
				coords = append(coords, c)
				break
			}
			if tries++; tries > 64*cfg.K {
				// Too crowded: relax the separation and keep going.
				minSep /= 2
				tries = 0
			}
		}
	}
	return seeds, nil
}

// placedPoint is one generated cluster member.
type placedPoint struct {
	u, v network.NodeID // canonical edge
	pos  float64        // offset from u (the smaller endpoint)
}

// clusterGrower implements the paper's traversal-based placement: Dijkstra
// expansion from the seed; whenever an edge is met for the first time,
// points are generated on it with gaps drawn from [0.5, 1.5] * s_cur.
// The scratch arrays are reused across clusters via explicit reset.
type clusterGrower struct {
	base    *network.Network
	settled []bool
	res     []float64 // distance from node back to the last placed point
	touched []network.NodeID
}

type growEntry struct {
	node network.NodeID
	dist float64
	from network.NodeID // settled predecessor (-1 for seed entries)
}

func (g *clusterGrower) reset() {
	for _, n := range g.touched {
		g.settled[n] = false
	}
	g.touched = g.touched[:0]
}

func (g *clusterGrower) grow(seed seedLoc, target int, cfg ClusterConfig, rng *rand.Rand) ([]placedPoint, error) {
	g.reset()
	var out []placedPoint
	met := make(map[uint64]metEdge)
	size := 0

	sCur := func() float64 {
		return cfg.SInit + cfg.SInit*(cfg.F-1)*float64(size)/float64(target)
	}
	gap := func() float64 { return (0.5 + rng.Float64()) * sCur() }

	// First point of the cluster on the seed edge.
	u, v := network.CanonEdge(seed.e.u, seed.e.v)
	first := placedPoint{u: u, v: v, pos: seed.pos}
	out = append(out, first)
	size++

	// Populate the seed edge in both directions from the first point.
	lastTowardV := seed.pos
	for size < target {
		p := lastTowardV + gap()
		if p > seed.e.w {
			break
		}
		out = append(out, placedPoint{u: u, v: v, pos: p})
		lastTowardV = p
		size++
	}
	lastTowardU := seed.pos
	for size < target {
		p := lastTowardU - gap()
		if p < 0 {
			break
		}
		out = append(out, placedPoint{u: u, v: v, pos: p})
		lastTowardU = p
		size++
	}
	met[network.EdgeKey(u, v)] = metEdge{fromNode: u, weight: seed.e.w, lastPos: lastTowardV, has: true}

	h := heapx.New(func(a, b growEntry) bool { return a.dist < b.dist })
	h.Push(growEntry{node: u, dist: seed.pos, from: -1})
	h.Push(growEntry{node: v, dist: seed.e.w - seed.pos, from: -1})
	seedResU := lastTowardU            // distance from u back to nearest point = lastTowardU
	seedResV := seed.e.w - lastTowardV // distance from v back to nearest point

	for !h.Empty() && size < target {
		e := h.Pop()
		if g.settled[e.node] {
			continue
		}
		g.settled[e.node] = true
		g.touched = append(g.touched, e.node)

		// Residual: distance from this node back to the last point placed
		// along the path it was settled through.
		switch {
		case e.from < 0 && e.node == u:
			g.res[e.node] = seedResU
		case e.from < 0 && e.node == v:
			g.res[e.node] = seedResV
		default:
			m := met[network.EdgeKey(e.from, e.node)]
			if m.has {
				// Points were placed walking from m.fromNode; the last one
				// sits m.lastPos from that side.
				w := m.weight
				if m.fromNode == e.node {
					g.res[e.node] = m.lastPos
				} else {
					g.res[e.node] = w - m.lastPos
				}
			} else {
				g.res[e.node] = g.res[e.from] + m.weight
			}
		}

		adj, err := g.base.Neighbors(e.node)
		if err != nil {
			return nil, err
		}
		for _, nb := range adj {
			key := network.EdgeKey(e.node, nb.Node)
			if _, seen := met[key]; !seen {
				// Meet the edge: generate points on it walking away from
				// the settled node.
				m := metEdge{fromNode: e.node, weight: nb.Weight}
				pos := gap() - g.res[e.node]
				if pos < 0 {
					pos = 0
				}
				for pos <= nb.Weight && size < target {
					cu, cv := network.CanonEdge(e.node, nb.Node)
					off := pos
					if cu != e.node {
						off = nb.Weight - pos
					}
					out = append(out, placedPoint{u: cu, v: cv, pos: off})
					m.has = true
					m.lastPos = pos
					size++
					pos += gap()
				}
				met[key] = m
			}
			if !g.settled[nb.Node] {
				h.Push(growEntry{node: nb.Node, dist: e.dist + nb.Weight, from: e.node})
			}
		}
	}
	return out, nil
}

// metEdge records what happened when an edge was met: which side the walk
// started from and where the last point landed (distance from that side).
type metEdge struct {
	fromNode network.NodeID
	weight   float64
	lastPos  float64
	has      bool
}
