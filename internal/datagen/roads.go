package datagen

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"strings"

	"netclus/internal/network"
)

// RoadSpec describes one of the paper's four real road networks (§5,
// Figure 10). The sizes are those of the cleaned, connected networks the
// paper reports.
type RoadSpec struct {
	Name  string
	Long  string
	Nodes int
	Edges int
	// NPoints is the dataset size the paper generates on this network for
	// Tables 1-2 ("roughly three times the number of network nodes").
	NPoints int
}

// Roads lists the four evaluation networks.
var Roads = []RoadSpec{
	{Name: "NA", Long: "North America main roads", Nodes: 175813, Edges: 179179, NPoints: 500000},
	{Name: "SF", Long: "San Francisco road map", Nodes: 174956, Edges: 223001, NPoints: 500000},
	{Name: "TG", Long: "San Joaquin County (TIGER)", Nodes: 18263, Edges: 23874, NPoints: 50000},
	{Name: "OL", Long: "Oldenburg road map", Nodes: 6105, Edges: 7035, NPoints: 20000},
}

// RoadSpecByName looks up one of the four networks by its code name.
func RoadSpecByName(name string) (RoadSpec, error) {
	for _, r := range Roads {
		if strings.EqualFold(r.Name, name) {
			return r, nil
		}
	}
	return RoadSpec{}, fmt.Errorf("datagen: unknown road network %q (want NA, SF, TG or OL)", name)
}

// MaxScale caps RoadNetwork / RoadDataset scaling at 16× the paper's
// dataset sizes — room for stress and sharding runs an order of magnitude
// past the original evaluation while keeping generation tractable.
const MaxScale = 16.0

// RoadNetwork builds the synthetic stand-in for one of the paper's road
// networks at the given scale (1.0 = the paper's size; benchmarks default to
// a smaller scale so CI stays fast, and scales up to MaxScale grow the
// network past the paper's for stress and sharding runs). The stand-in
// matches the original's node count, edge/node ratio, connectivity and
// Euclidean edge weights; see DESIGN.md's substitution table for why this
// preserves the experiments' behaviour. The result is deterministic per
// (name, scale).
func RoadNetwork(name string, scale float64) (*network.Network, error) {
	spec, err := RoadSpecByName(name)
	if err != nil {
		return nil, err
	}
	if scale <= 0 || scale > MaxScale {
		return nil, fmt.Errorf("datagen: scale %v outside (0,%v]", scale, MaxScale)
	}
	wantNodes := int(float64(spec.Nodes) * scale)
	if wantNodes < 64 {
		wantNodes = 64
	}
	ratio := float64(spec.Edges) / float64(spec.Nodes)

	h := fnv.New64a()
	h.Write([]byte(strings.ToUpper(name)))
	fmt.Fprintf(h, "|%.6f", scale)
	rng := rand.New(rand.NewSource(int64(h.Sum64())))

	// Build a grid slightly larger than needed, with enough extra edges that
	// the trimmed subnetwork lands near the target edge/node ratio, then
	// trim with a BFS ball to the exact node count.
	side := int(math.Ceil(math.Sqrt(float64(wantNodes) * 1.1)))
	rows := side
	gridNodes := rows * side
	extras := int((ratio - 1) * float64(gridNodes) * 1.15)
	if extras < 0 {
		extras = 0
	}
	g, err := GridNetwork(rows, side, 1.0, 0.4, extras, rng)
	if err != nil {
		return nil, err
	}
	if g.NumNodes() > wantNodes {
		start := network.NodeID(rng.Intn(g.NumNodes()))
		g, err = network.ExtractConnectedCount(g, start, wantNodes)
		if err != nil {
			return nil, err
		}
	}
	return g, nil
}

// RoadDataset builds the stand-in network for name at the given scale and
// generates the paper's Tables 1-2 workload on it: k clusters of roughly
// 3*|V| total points with 1% outliers. sInit is chosen relative to the mean
// edge weight so clusters are denser than the background network. It returns
// the populated network and the configuration used (whose Eps/Delta feed the
// clustering algorithms).
func RoadDataset(name string, scale float64, k int) (*network.Network, ClusterConfig, error) {
	spec, err := RoadSpecByName(name)
	if err != nil {
		return nil, ClusterConfig{}, err
	}
	base, err := RoadNetwork(name, scale)
	if err != nil {
		return nil, ClusterConfig{}, err
	}
	n := int(float64(spec.NPoints) * scale)
	if n < 100 {
		n = 100
	}
	cfg := DefaultClusterConfig(n, k, clusterSInit(base, n, k))
	h := fnv.New64a()
	fmt.Fprintf(h, "pts|%s|%.6f|%d", strings.ToUpper(name), scale, k)
	rng := rand.New(rand.NewSource(int64(h.Sum64())))
	net, err := GeneratePoints(base, cfg, rng)
	if err != nil {
		return nil, ClusterConfig{}, err
	}
	return net, cfg, nil
}

// clusterSInit picks an s_init so that a cluster of n/k points spans a few
// hundred edges: total cluster path length ~= size * s_init * (1+F)/2 kept
// well under the network's total edge length divided by k.
func clusterSInit(base *network.Network, n, k int) float64 {
	total := 0.0
	for u := 0; u < base.NumNodes(); u++ {
		adj, err := base.Neighbors(network.NodeID(u))
		if err != nil {
			continue
		}
		for _, nb := range adj {
			if network.NodeID(u) < nb.Node {
				total += nb.Weight
			}
		}
	}
	perCluster := float64(n) / float64(k)
	// Let each cluster cover ~1% of the network's length at mean spacing
	// s_init*(1+F)/2 with F=5.
	s := total * 0.01 / (perCluster * 3)
	if s <= 0 {
		s = 0.1
	}
	return s
}
