package evalx

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestARIPerfectAndPermuted(t *testing.T) {
	truth := []int32{0, 0, 1, 1, 2, 2}
	same := []int32{5, 5, 9, 9, 7, 7} // same partition, different labels
	ari, err := ARI(truth, same)
	if err != nil {
		t.Fatal(err)
	}
	if ari != 1 {
		t.Fatalf("ARI of identical partitions = %v", ari)
	}
}

func TestARIIndependentIsNearZero(t *testing.T) {
	rnd := rand.New(rand.NewSource(1))
	n := 5000
	a := make([]int32, n)
	b := make([]int32, n)
	for i := range a {
		a[i] = int32(rnd.Intn(5))
		b[i] = int32(rnd.Intn(5))
	}
	ari, err := ARI(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ari) > 0.02 {
		t.Fatalf("ARI of independent labelings = %v, want ~0", ari)
	}
}

func TestARIErrorsAndEdgeCases(t *testing.T) {
	if _, err := ARI([]int32{0}, []int32{0, 1}); err == nil {
		t.Fatal("want length error")
	}
	ari, err := ARI([]int32{0}, []int32{5})
	if err != nil || ari != 1 {
		t.Fatalf("single point: %v, %v", ari, err)
	}
	// Both trivially all-one-cluster.
	ari, err = ARI([]int32{1, 1, 1}, []int32{2, 2, 2})
	if err != nil || ari != 1 {
		t.Fatalf("trivial partitions: %v, %v", ari, err)
	}
}

func TestNMIBounds(t *testing.T) {
	truth := []int32{0, 0, 1, 1, 2, 2}
	if v, _ := NMI(truth, truth); math.Abs(v-1) > 1e-12 {
		t.Fatalf("NMI self = %v", v)
	}
	uniform := []int32{0, 0, 0, 0, 0, 0}
	if v, _ := NMI(truth, uniform); v != 0 {
		t.Fatalf("NMI vs constant = %v, want 0", v)
	}
	if v, _ := NMI(uniform, uniform); v != 1 {
		t.Fatalf("NMI of two constants = %v, want 1", v)
	}
	if _, err := NMI([]int32{0}, []int32{0, 1}); err == nil {
		t.Fatal("want length error")
	}
}

func TestPurity(t *testing.T) {
	truth := []int32{0, 0, 0, 1, 1, 1}
	pred := []int32{7, 7, 8, 8, 8, 8}
	// Cluster 7: majority 0 (2); cluster 8: majority 1 (3). Purity = 5/6.
	p, err := Purity(truth, pred)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-5.0/6.0) > 1e-12 {
		t.Fatalf("purity %v", p)
	}
}

func TestPairwiseF1(t *testing.T) {
	truth := []int32{0, 0, 1, 1}
	pred := []int32{0, 0, 0, 1}
	// Truth pairs: (0,1),(2,3). Pred pairs: (0,1),(0,2),(1,2). TP = 1.
	prec, rec, f1, err := PairwiseF1(truth, pred)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(prec-1.0/3.0) > 1e-12 || math.Abs(rec-0.5) > 1e-12 {
		t.Fatalf("precision %v recall %v", prec, rec)
	}
	want := 2 * prec * rec / (prec + rec)
	if math.Abs(f1-want) > 1e-12 {
		t.Fatalf("f1 %v", f1)
	}
	// Perfect agreement.
	_, _, f1, _ = PairwiseF1(truth, truth)
	if f1 != 1 {
		t.Fatalf("self F1 %v", f1)
	}
}

func TestNoiseAsSingletons(t *testing.T) {
	labels := []int32{0, -1, 1, -1, -1}
	out := NoiseAsSingletons(labels, -1)
	seen := map[int32]bool{}
	for _, l := range out {
		if seen[l] && l != 0 && l != 1 {
			t.Fatalf("noise labels not unique: %v", out)
		}
		seen[l] = true
	}
	if out[0] != 0 || out[2] != 1 {
		t.Fatalf("non-noise labels changed: %v", out)
	}
	if out[1] == out[3] || out[1] == -1 {
		t.Fatalf("noise not singletonized: %v", out)
	}
	// All-noise input.
	out = NoiseAsSingletons([]int32{-1, -1}, -1)
	if out[0] == out[1] {
		t.Fatal("all-noise input should get distinct labels")
	}
}

func TestNumClusters(t *testing.T) {
	if n := NumClusters([]int32{0, 1, 1, -1, 3}, -1); n != 3 {
		t.Fatalf("NumClusters = %d", n)
	}
	if n := NumClusters(nil, -1); n != 0 {
		t.Fatalf("empty NumClusters = %d", n)
	}
}

// TestARISymmetry: ARI(a,b) == ARI(b,a) for random labelings.
func TestARISymmetry(t *testing.T) {
	prop := func(pairs []uint8) bool {
		if len(pairs) == 0 {
			return true
		}
		a := make([]int32, len(pairs))
		b := make([]int32, len(pairs))
		for i, p := range pairs {
			a[i] = int32(p % 4)
			b[i] = int32(p / 4 % 4)
		}
		x, err1 := ARI(a, b)
		y, err2 := ARI(b, a)
		return err1 == nil && err2 == nil && math.Abs(x-y) < 1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
