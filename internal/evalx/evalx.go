// Package evalx scores a discovered clustering against ground truth. The
// paper evaluates effectiveness visually (Figure 11); these external indices
// (Adjusted Rand Index, NMI, purity, pairwise F1) are the quantitative
// counterpart used by the experiments harness and the tests.
package evalx

import (
	"fmt"
	"math"
)

// Contingency is the co-occurrence table of two labelings over the same
// points, plus the marginals needed by the indices.
type Contingency struct {
	Cells map[[2]int32]int
	RowN  map[int32]int // truth label -> size
	ColN  map[int32]int // predicted label -> size
	N     int
}

// BuildContingency cross-tabulates truth vs pred. The slices must have equal
// length.
func BuildContingency(truth, pred []int32) (*Contingency, error) {
	if len(truth) != len(pred) {
		return nil, fmt.Errorf("evalx: %d truth labels vs %d predicted", len(truth), len(pred))
	}
	c := &Contingency{
		Cells: make(map[[2]int32]int),
		RowN:  make(map[int32]int),
		ColN:  make(map[int32]int),
		N:     len(truth),
	}
	for i := range truth {
		c.Cells[[2]int32{truth[i], pred[i]}]++
		c.RowN[truth[i]]++
		c.ColN[pred[i]]++
	}
	return c, nil
}

func choose2(n int) float64 { return float64(n) * float64(n-1) / 2 }

// ARI computes the Adjusted Rand Index between two labelings: 1 for
// identical partitions, ~0 for independent ones. Labels are opaque; callers
// that want noise points (label -1) to count as singletons should first map
// them through NoiseAsSingletons.
func ARI(truth, pred []int32) (float64, error) {
	c, err := BuildContingency(truth, pred)
	if err != nil {
		return 0, err
	}
	if c.N < 2 {
		return 1, nil
	}
	sumCells := 0.0
	for _, n := range c.Cells {
		sumCells += choose2(n)
	}
	sumRows, sumCols := 0.0, 0.0
	for _, n := range c.RowN {
		sumRows += choose2(n)
	}
	for _, n := range c.ColN {
		sumCols += choose2(n)
	}
	total := choose2(c.N)
	expected := sumRows * sumCols / total
	maxIdx := (sumRows + sumCols) / 2
	if maxIdx == expected {
		return 1, nil // both partitions trivial in the same way
	}
	return (sumCells - expected) / (maxIdx - expected), nil
}

// NMI computes normalized mutual information (arithmetic-mean
// normalization), in [0, 1].
func NMI(truth, pred []int32) (float64, error) {
	c, err := BuildContingency(truth, pred)
	if err != nil {
		return 0, err
	}
	if c.N == 0 {
		return 1, nil
	}
	n := float64(c.N)
	mi := 0.0
	for cell, cnt := range c.Cells {
		pij := float64(cnt) / n
		pi := float64(c.RowN[cell[0]]) / n
		pj := float64(c.ColN[cell[1]]) / n
		mi += pij * math.Log(pij/(pi*pj))
	}
	hT, hP := 0.0, 0.0
	for _, cnt := range c.RowN {
		p := float64(cnt) / n
		hT -= p * math.Log(p)
	}
	for _, cnt := range c.ColN {
		p := float64(cnt) / n
		hP -= p * math.Log(p)
	}
	if hT == 0 && hP == 0 {
		return 1, nil
	}
	den := (hT + hP) / 2
	if den == 0 {
		return 0, nil
	}
	return mi / den, nil
}

// Purity is the fraction of points whose predicted cluster's majority truth
// label matches their own.
func Purity(truth, pred []int32) (float64, error) {
	c, err := BuildContingency(truth, pred)
	if err != nil {
		return 0, err
	}
	if c.N == 0 {
		return 1, nil
	}
	best := make(map[int32]int)
	for cell, cnt := range c.Cells {
		if cnt > best[cell[1]] {
			best[cell[1]] = cnt
		}
	}
	sum := 0
	for _, b := range best {
		sum += b
	}
	return float64(sum) / float64(c.N), nil
}

// PairwiseF1 returns precision, recall and F1 over co-clustered point pairs:
// a pair is positive when both labelings place its points together.
func PairwiseF1(truth, pred []int32) (precision, recall, f1 float64, err error) {
	c, err := BuildContingency(truth, pred)
	if err != nil {
		return 0, 0, 0, err
	}
	tp := 0.0
	for _, n := range c.Cells {
		tp += choose2(n)
	}
	predPairs, truthPairs := 0.0, 0.0
	for _, n := range c.ColN {
		predPairs += choose2(n)
	}
	for _, n := range c.RowN {
		truthPairs += choose2(n)
	}
	precision, recall = 1, 1
	if predPairs > 0 {
		precision = tp / predPairs
	}
	if truthPairs > 0 {
		recall = tp / truthPairs
	}
	if precision+recall == 0 {
		return precision, recall, 0, nil
	}
	f1 = 2 * precision * recall / (precision + recall)
	return precision, recall, f1, nil
}

// NoiseAsSingletons maps every occurrence of the noise label to a fresh
// unique label, so indices treat noise points as singleton clusters rather
// than one big cluster. Fresh labels start above the maximum existing label.
func NoiseAsSingletons(labels []int32, noise int32) []int32 {
	out := make([]int32, len(labels))
	next := int32(math.MinInt32)
	for _, l := range labels {
		if l != noise && l >= next {
			next = l + 1
		}
	}
	if next == math.MinInt32 {
		next = 0
	}
	for i, l := range labels {
		if l == noise {
			out[i] = next
			next++
		} else {
			out[i] = l
		}
	}
	return out
}

// NumClusters counts distinct non-noise labels.
func NumClusters(labels []int32, noise int32) int {
	seen := make(map[int32]struct{})
	for _, l := range labels {
		if l != noise {
			seen[l] = struct{}{}
		}
	}
	return len(seen)
}
