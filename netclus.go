// Package netclus clusters objects lying on a spatial network under the
// shortest-path (network) distance, implementing Yiu & Mamoulis,
// "Clustering Objects on a Spatial Network", SIGMOD 2004.
//
// A spatial network is an undirected weighted graph; objects (points) sit at
// arbitrary positions on its edges, and the dissimilarity between two
// objects is the length of the shortest path between them over the network —
// not their Euclidean distance. The package provides:
//
//   - the network data model with an in-memory implementation (Builder /
//     Network) and a disk-based one with the paper's §4.1 storage
//     architecture (BuildStore / OpenStore: flat adjacency and point-group
//     files indexed by B+-trees behind a 1 MB LRU buffer);
//   - three clustering paradigms adapted to network distance: partitioning
//     (KMedoids, with the Fig. 4 concurrent expansion and Fig. 5 incremental
//     medoid replacement), density-based (EpsLink and a network DBSCAN), and
//     hierarchical (SingleLink, producing an exact single-link Dendrogram
//     with the δ scalability heuristic and §5.3 interesting-level hints);
//   - network operators: multi-source Dijkstra, point-to-point distance,
//     ε-range queries; §6 extensions (Reweight for time-dependent or
//     alternative weights, Combine for multi-network clustering through
//     transition edges);
//   - the paper's synthetic workload generators, external quality indices
//     (ARI, NMI, purity), and an SVG renderer for Figure 11-style maps.
//
// Quick start:
//
//	b := netclus.NewBuilder()
//	n0 := b.AddNode(netclus.Coord{X: 0, Y: 0})
//	n1 := b.AddNode(netclus.Coord{X: 1, Y: 0})
//	b.AddEdge(n0, n1, 1.0)
//	b.AddPoint(n0, n1, 0.25, 0)
//	b.AddPoint(n0, n1, 0.40, 0)
//	net, err := b.Build()
//	...
//	res, err := netclus.EpsLink(net, netclus.EpsLinkOptions{Eps: 0.2})
//	// res.Labels[p] is the cluster of point p, netclus.Noise for outliers.
//
// All clustering functions accept the Graph interface, so they run
// identically over an in-memory Network or a disk Store. See DESIGN.md for
// the system inventory and EXPERIMENTS.md for the paper-reproduction index.
package netclus

import (
	"context"
	"io"
	"os"

	"netclus/internal/core"
	"netclus/internal/csr"
	"netclus/internal/delta"
	"netclus/internal/lbound"
	"netclus/internal/network"
	"netclus/internal/pagebuf"
	"netclus/internal/shard"
	"netclus/internal/storage"
	"netclus/internal/viz"
)

// Core data model (see internal/network).
type (
	// NodeID identifies a network node; IDs are dense in [0, NumNodes).
	NodeID = network.NodeID
	// PointID identifies an object on the network; points on the same edge
	// have sequential IDs in ascending offset order.
	PointID = network.PointID
	// GroupID identifies the point group (all points of one edge).
	GroupID = network.GroupID
	// Coord is an optional planar embedding of a node.
	Coord = network.Coord
	// Neighbor is one adjacency-list entry.
	Neighbor = network.Neighbor
	// PointInfo is a resolved point position.
	PointInfo = network.PointInfo
	// PointGroup describes the points of one edge.
	PointGroup = network.PointGroup
	// Graph is the access interface all clustering algorithms use.
	Graph = network.Graph
	// Network is the in-memory Graph implementation.
	Network = network.Network
	// Builder assembles a Network.
	Builder = network.Builder
	// Seed is a multi-source traversal seed.
	Seed = network.Seed
	// Transition joins two networks at a pair of nodes (§6).
	Transition = network.Transition
	// WeightFunc rewrites edge weights (§6).
	WeightFunc = network.WeightFunc
)

// NoGroup marks an edge without points.
const NoGroup = network.NoGroup

// NewBuilder returns an empty network builder.
func NewBuilder() *Builder { return network.NewBuilder() }

// ReadNetwork parses the text interchange formats (see internal/network).
func ReadNetwork(nodes, edges, points io.Reader) (*Network, error) {
	return network.ReadNetwork(nodes, edges, points)
}

// WriteNetwork writes a network in the text interchange formats.
func WriteNetwork(n *Network, nodes, edges, points io.Writer) error {
	return network.WriteNetwork(n, nodes, edges, points)
}

// LoadNetworkFiles reads the network stored as <prefix>.node, <prefix>.edge
// and — when withPoints is set — <prefix>.pnt, the layout written by the
// netclus CLI. It is the file-system front end of ReadNetwork shared by the
// command-line tools and the netclusd dataset registry.
func LoadNetworkFiles(prefix string, withPoints bool) (*Network, error) {
	nodes, err := os.Open(prefix + ".node")
	if err != nil {
		return nil, err
	}
	defer nodes.Close()
	edges, err := os.Open(prefix + ".edge")
	if err != nil {
		return nil, err
	}
	defer edges.Close()
	if !withPoints {
		return network.ReadNetwork(nodes, edges, nil)
	}
	pts, err := os.Open(prefix + ".pnt")
	if err != nil {
		return nil, err
	}
	defer pts.Close()
	return network.ReadNetwork(nodes, edges, pts)
}

// PointDistance computes the network distance d(p, q) of Definition 4.
func PointDistance(g Graph, p, q PointID) (float64, error) {
	return network.PointDistance(g, p, q)
}

// PointDistanceCtx is PointDistance with cancellation: the traversal checks
// ctx periodically and returns an error wrapping ctx.Err() when it is done.
func PointDistanceCtx(ctx context.Context, g Graph, p, q PointID) (float64, error) {
	return network.PointDistanceCtx(ctx, g, p, q)
}

// NodeDistances runs Dijkstra from src and returns every node's distance.
func NodeDistances(g Graph, src NodeID) ([]float64, error) {
	return network.NodeDistances(g, src)
}

// NodeDistancesFrom runs a multi-source Dijkstra from the given seeds.
func NodeDistancesFrom(g Graph, seeds []Seed) ([]float64, error) {
	return network.NodeDistancesFrom(g, seeds)
}

// RangeScratch amortizes the state of repeated ε-range queries.
type RangeScratch = network.RangeScratch

// NewRangeScratch allocates range-query scratch for g.
func NewRangeScratch(g Graph) *RangeScratch { return network.NewRangeScratch(g) }

// RangeQuerier is the backend-neutral ε-range query surface: the generic
// RangeScratch and the compiled Snapshot's kernel scratch both satisfy it.
type RangeQuerier = network.RangeQuerier

// ScratchFor returns the fastest range-query scratch for g: the flat-array
// kernel scratch when g is a compiled Snapshot, the generic RangeScratch
// otherwise. Results are identical either way.
func ScratchFor(g Graph) RangeQuerier { return network.ScratchFor(g) }

// Snapshot is an immutable compiled form of a network: int32 CSR adjacency
// with inlined weights and position-sorted per-edge point buckets, built
// once with Compile / CompileStore. It implements Graph, so every clustering
// function and network operator accepts it unchanged and produces
// byte-identical labels — but traversals run on flat arrays with
// epoch-stamped scratch, typically several times faster than the pointer
// Network and an order of magnitude faster than the cold Store. Any number
// of goroutines may query one snapshot concurrently.
type Snapshot = csr.Snapshot

// CSRStats describes a compiled snapshot: cardinalities, compile time and
// resident bytes.
type CSRStats = csr.Stats

// KNNBatch is a reusable multi-query kNN runner over one Snapshot in
// structure-of-arrays layout: queries accumulate via Add, Run answers them
// all in one cache-friendly sweep (optionally fanned across workers), and
// Results hands each answer back without copying. Obtain one with
// Snapshot.NewKNNBatch; every query is answered exactly like a lone
// KNearestNeighbors call.
type KNNBatch = csr.KNNBatch

// Compile builds a Snapshot from any Graph (typically an in-memory
// Network). The source is not retained; node coordinates are carried over
// when the source has them, so Euclidean bounds (BuildBounds) keep working
// on the snapshot.
func Compile(g Graph) (*Snapshot, error) { return csr.Compile(g) }

// CompileStore builds a Snapshot from an open disk Store — a hot in-memory
// replica whose queries bypass the page buffer entirely. The Store carries
// no planar embedding, so the snapshot reports HasCoords() == false and
// BuildBounds falls back to landmark-only bounds.
func CompileStore(st *Store) (*Snapshot, error) { return csr.Compile(st) }

// PointDist pairs a point with its network distance from a query point.
type PointDist = network.PointDist

// KNearestNeighbors returns p's k closest points by network distance.
func KNearestNeighbors(g Graph, p PointID, k int) ([]PointDist, error) {
	return network.KNearestNeighbors(g, p, k)
}

// KNearestNeighborsCtx is KNearestNeighbors with cancellation.
func KNearestNeighborsCtx(ctx context.Context, g Graph, p PointID, k int) ([]PointDist, error) {
	return network.KNearestNeighborsCtx(ctx, g, p, k)
}

// NearestNeighbor returns p's single closest point by network distance.
func NearestNeighbor(g Graph, p PointID) (PointDist, error) {
	return network.NearestNeighbor(g, p)
}

// Lower-bound pruning (see internal/lbound): landmark (ALT) distance tables
// plus, on validated planar embeddings, the Euclidean filter-and-refine
// discipline. Build bounds once per network with BuildBounds, then pass them
// through DBSCANOptions.Prune / KMedoidsOptions.Prune, RangeScratch's
// SetBounder, or the *Pruned query entry points. Results are identical to
// the unpruned paths; ClusterStats.Prune reports the saved work.
type (
	// Bounds is an immutable bound provider, safe for concurrent use.
	Bounds = lbound.Bounds
	// BoundsOptions configures BuildBounds (landmark count, Euclidean
	// validation, build parallelism).
	BoundsOptions = lbound.Options
	// BoundsStats describes a finished preprocessing pass (landmarks,
	// build time, table memory).
	BoundsStats = lbound.BuildStats
	// Bounder is the pruning interface the traversal operators consume;
	// *Bounds implements it.
	Bounder = network.Bounder
	// PruneStats counts the work saved by lower-bound pruning.
	PruneStats = network.PruneStats
)

// DefaultLandmarks is the landmark count used when BoundsOptions.Landmarks
// is 0.
const DefaultLandmarks = lbound.DefaultLandmarks

// BuildBounds failure modes callers may want to fall back from (e.g. retry
// without EuclideanLB when the graph carries no embedding).
var (
	ErrBoundsNoCoords     = lbound.ErrNoCoords
	ErrBoundsNotEuclidean = lbound.ErrNotEuclidean
)

// BuildBounds precomputes distance bounds for g: landmark tables selected by
// the farthest-point heuristic and, when opts.EuclideanLB is set on a graph
// with a planar embedding whose edge weights are at least the straight-line
// endpoint distances, the Euclidean candidate filter.
func BuildBounds(g Graph, opts BoundsOptions) (*Bounds, error) {
	return lbound.Build(g, opts)
}

// KNearestNeighborsPruned is KNearestNeighbors over the filter-and-refine
// path: identical results, with Euclidean candidate streaming, lower-bound
// rejection and goal-directed refinement. stats may be nil.
func KNearestNeighborsPruned(g Graph, b Bounder, p PointID, k int, stats *PruneStats) ([]PointDist, error) {
	return network.KNearestNeighborsPruned(g, b, p, k, stats)
}

// KNearestNeighborsPrunedCtx is KNearestNeighborsPruned with cancellation.
func KNearestNeighborsPrunedCtx(ctx context.Context, g Graph, b Bounder, p PointID, k int, stats *PruneStats) ([]PointDist, error) {
	return network.KNearestNeighborsPrunedCtx(ctx, g, b, p, k, stats)
}

// NearestNeighborPruned is NearestNeighbor over the filter-and-refine path.
func NearestNeighborPruned(g Graph, b Bounder, p PointID, stats *PruneStats) (PointDist, error) {
	return network.NearestNeighborPruned(g, b, p, stats)
}

// Reweight derives a network with every edge weight mapped through f —
// the §6 mechanism for travel-time, cost or time-of-day snapshots.
func Reweight(n *Network, f WeightFunc) (*Network, error) { return network.Reweight(n, f) }

// Combine merges two networks joined by transition edges (§6); the second
// network's nodes are renumbered by the returned offset.
func Combine(a, b *Network, transitions []Transition) (*Network, NodeID, error) {
	return network.Combine(a, b, transitions)
}

// LargestComponent extracts the largest connected component.
func LargestComponent(n *Network) (*Network, error) { return network.LargestComponent(n) }

// ExtractConnectedFraction grows a connected subnetwork covering the given
// fraction of nodes (the Figure 14 experiment's subnetwork derivation).
func ExtractConnectedFraction(n *Network, start NodeID, frac float64) (*Network, error) {
	return network.ExtractConnectedFraction(n, start, frac)
}

// Clustering algorithms (see internal/core).
type (
	// KMedoidsOptions configures the §4.2 partitioning algorithm.
	KMedoidsOptions = core.KMedoidsOptions
	// KMedoidsResult is its outcome.
	KMedoidsResult = core.KMedoidsResult
	// EpsLinkOptions configures the §4.3 ε-Link algorithm.
	EpsLinkOptions = core.EpsLinkOptions
	// EpsLinkResult is its outcome.
	EpsLinkResult = core.EpsLinkResult
	// DBSCANOptions configures the network DBSCAN adaptation.
	DBSCANOptions = core.DBSCANOptions
	// DBSCANResult is its outcome.
	DBSCANResult = core.DBSCANResult
	// SingleLinkOptions configures the §4.4 hierarchical algorithm.
	SingleLinkOptions = core.SingleLinkOptions
	// SingleLinkResult is its outcome.
	SingleLinkResult = core.SingleLinkResult
	// OPTICSOptions configures the OPTICS cluster-ordering extension.
	OPTICSOptions = core.OPTICSOptions
	// OPTICSResult is its outcome (ordering + reachability plot).
	OPTICSResult = core.OPTICSResult
	// RepLinkOptions configures representative-based complete/average
	// linkage (the paper's §7 future work).
	RepLinkOptions = core.RepLinkOptions
	// RepLinkResult is its outcome.
	RepLinkResult = core.RepLinkResult
	// Linkage selects RepLink's merge criterion.
	Linkage = core.Linkage
	// Dendrogram is the recorded merge history of SingleLink.
	Dendrogram = core.Dendrogram
	// MergeStep is one agglomeration of the dendrogram.
	MergeStep = core.MergeStep
	// InterestingLevel is a §5.3 dendrogram level hint.
	InterestingLevel = core.InterestingLevel
	// ClusterStats counts the traversal work of an algorithm run.
	ClusterStats = core.Stats
	// TimeWeight is a time-dependent edge weight function (§6).
	TimeWeight = core.TimeWeight
	// TimeSweepOptions configures a time-dependent clustering sweep.
	TimeSweepOptions = core.TimeSweepOptions
	// TimeSweepResult holds the per-instant clusterings and their
	// evolution events.
	TimeSweepResult = core.TimeSweepResult
	// ClusterEvent is one cluster-evolution event between snapshots.
	ClusterEvent = core.ClusterEvent
)

// Cluster-evolution event types (§6 time-parameterized clusters).
const (
	EventStable    = core.EventStable
	EventSplit     = core.EventSplit
	EventMerge     = core.EventMerge
	EventAppear    = core.EventAppear
	EventDisappear = core.EventDisappear
)

// TimeSweep clusters the objects at several instants of a time-dependent
// network and tracks cluster evolution (§6's time-parameterized clusters).
func TimeSweep(base *Network, opts TimeSweepOptions) (*TimeSweepResult, error) {
	return core.TimeSweep(base, opts)
}

// Noise labels points assigned to no cluster.
const Noise = core.Noise

// KMedoids runs the partitioning algorithm of §4.2.
func KMedoids(g Graph, opts KMedoidsOptions) (*KMedoidsResult, error) {
	return core.KMedoids(g, opts)
}

// KMedoidsCtx is KMedoids with cancellation; opts.Workers fans the restarts
// across goroutines, each on its own read view of g.
func KMedoidsCtx(ctx context.Context, g Graph, opts KMedoidsOptions) (*KMedoidsResult, error) {
	return core.KMedoidsCtx(ctx, g, opts)
}

// EpsLink runs the density-based ε-Link algorithm of §4.3.
func EpsLink(g Graph, opts EpsLinkOptions) (*EpsLinkResult, error) {
	return core.EpsLink(g, opts)
}

// EpsLinkCtx is EpsLink with cancellation; opts.Workers fans the range
// queries across goroutines with labels identical to the sequential run.
func EpsLinkCtx(ctx context.Context, g Graph, opts EpsLinkOptions) (*EpsLinkResult, error) {
	return core.EpsLinkCtx(ctx, g, opts)
}

// DBSCAN runs the network adaptation of DBSCAN (§4.3).
func DBSCAN(g Graph, opts DBSCANOptions) (*DBSCANResult, error) {
	return core.DBSCAN(g, opts)
}

// DBSCANCtx is DBSCAN with cancellation; opts.Workers fans the range
// queries across goroutines with labels identical to the sequential run.
func DBSCANCtx(ctx context.Context, g Graph, opts DBSCANOptions) (*DBSCANResult, error) {
	return core.DBSCANCtx(ctx, g, opts)
}

// SingleLink runs the hierarchical algorithm of §4.4.
func SingleLink(g Graph, opts SingleLinkOptions) (*SingleLinkResult, error) {
	return core.SingleLink(g, opts)
}

// SingleLinkCtx is SingleLink with cancellation.
func SingleLinkCtx(ctx context.Context, g Graph, opts SingleLinkOptions) (*SingleLinkResult, error) {
	return core.SingleLinkCtx(ctx, g, opts)
}

// OPTICS computes the density-based cluster ordering under the network
// distance — the paper's cited remedy (§2, [2]) for choosing ε: one run at a
// generous Eps encodes the DBSCAN clustering of every ε' <= Eps, extracted
// with OPTICSResult.ExtractDBSCAN.
func OPTICS(g Graph, opts OPTICSOptions) (*OPTICSResult, error) {
	return core.OPTICS(g, opts)
}

// OPTICSCtx is OPTICS with cancellation; opts.Workers fans the range
// queries across goroutines with an ordering identical to the sequential
// run.
func OPTICSCtx(ctx context.Context, g Graph, opts OPTICSOptions) (*OPTICSResult, error) {
	return core.OPTICSCtx(ctx, g, opts)
}

// RepLink linkage criteria.
const (
	CompleteLinkage = core.CompleteLinkage
	AverageLinkage  = core.AverageLinkage
)

// RepLink runs representative-based agglomerative clustering under the
// network distance (complete or average linkage; §7 future work). With
// MaxReps = 0 it is exact; with a cap and the ε pre-phase it scales.
func RepLink(g Graph, opts RepLinkOptions) (*RepLinkResult, error) {
	return core.RepLink(g, opts)
}

// CountClusters counts distinct non-noise labels.
func CountClusters(labels []int32) int { return core.CountClusters(labels) }

// SuppressSmallClusters relabels clusters below minSup to Noise, in place.
func SuppressSmallClusters(labels []int32, minSup int) []int32 {
	return core.SuppressSmallClusters(labels, minSup)
}

// Disk storage (see internal/storage). StoreOptions covers the paper's
// physical parameters (PageSize, BufferBytes, Layout) plus the performance
// knobs of the parallel read path: PoolShards (buffer-pool latch shards),
// AdjCacheEntries / GroupCacheEntries (decoded-record cache bounds) and
// DisableRecordCaches (restore the paper's uncached access path).
type StoreOptions = storage.Options

// Store is the disk-backed Graph (§4.1 storage architecture).
type Store = storage.Store

// BufferStats reports the buffer pool's cumulative page traffic — hits,
// misses, reads, writes and the derived hit ratio, aggregated over the
// pool's latch shards. Store.BufferStats returns a consistent snapshot at
// any time, also while queries run.
type BufferStats = pagebuf.Stats

// CacheStats reports the decoded-record cache traffic of a Store: hits,
// misses and evictions of the adjacency and group caches plus the B+-tree
// leaf-hint counters. A cache hit answers a read without any page access, so
// BufferStats.LogicalReads counts only the misses; add CacheStats hits back
// in to recover the paper's logical page-access metric for the uncached
// layout. Store.CacheStats returns a consistent snapshot at any time.
type CacheStats = storage.CacheStats

// BuildStore materializes n into a store directory.
func BuildStore(dir string, n *Network, opts StoreOptions) error {
	return storage.Build(dir, n, opts)
}

// OpenStore opens a store directory; zero Options give the paper's
// parameters (4 KB pages, 1 MB buffer).
func OpenStore(dir string, opts StoreOptions) (*Store, error) {
	return storage.Open(dir, opts)
}

// StoreStats is a combined snapshot of every counter family a Store exports:
// buffer-pool traffic (aggregate and per latch shard) and the decoded-record
// caches. The serving layer samples it per request batch and subtracts
// snapshots to attribute I/O to spans of work; JSON field names are stable
// (see the stats round-trip test).
type StoreStats struct {
	Buffer BufferStats   `json:"buffer"`
	Cache  CacheStats    `json:"cache"`
	Shards []BufferStats `json:"shards,omitempty"`
}

// SnapshotStore captures a consistent-enough view of st's counters: each
// family is internally consistent; families are sampled one after another.
func SnapshotStore(st *Store) StoreStats {
	return StoreStats{
		Buffer: st.BufferStats(),
		Cache:  st.CacheStats(),
		Shards: st.ShardStats(),
	}
}

// Sub returns s - o field by field, the counter delta across a span of work.
// Shard slices of different lengths (snapshots of different stores) yield a
// nil Shards.
func (s StoreStats) Sub(o StoreStats) StoreStats {
	d := StoreStats{
		Buffer: s.Buffer.Sub(o.Buffer),
		Cache:  s.Cache.Sub(o.Cache),
	}
	if len(s.Shards) == len(o.Shards) {
		for i := range s.Shards {
			d.Shards = append(d.Shards, s.Shards[i].Sub(o.Shards[i]))
		}
	}
	return d
}

// Durable snapshot persistence (see internal/csr). A compiled Snapshot can be
// written to a versioned, checksummed, page-aligned file and reopened with
// zero store or network reads — the warm-start path of serving replicas.
var (
	// ErrSnapshotMagic reports a file that is not a netclus snapshot.
	ErrSnapshotMagic = csr.ErrSnapshotMagic
	// ErrSnapshotVersion reports an unsupported snapshot format version.
	ErrSnapshotVersion = csr.ErrSnapshotVersion
	// ErrSnapshotChecksum reports snapshot payload corruption.
	ErrSnapshotChecksum = csr.ErrSnapshotChecksum
	// ErrSnapshotCorrupt reports a structurally invalid snapshot.
	ErrSnapshotCorrupt = csr.ErrSnapshotCorrupt
)

// WriteSnapshotFile persists a compiled snapshot to path (atomic rename).
func WriteSnapshotFile(s *Snapshot, path string) error {
	return csr.WriteSnapshotFile(s, path)
}

// OpenSnapshot loads a snapshot file written by WriteSnapshotFile. The load
// validates magic, version and checksum and re-checks every structural
// invariant; failures return typed ErrSnapshot* errors, never a panic.
func OpenSnapshot(path string) (*Snapshot, error) { return csr.OpenSnapshot(path) }

// IsSnapshotFile reports whether path begins with the snapshot magic.
func IsSnapshotFile(path string) bool { return csr.IsSnapshotFile(path) }

// Sharded serving (see internal/shard). A ShardedSet partitions a network
// into K connected subnetworks compiled to per-shard CSR snapshots plus
// explicit cut-edge and boundary-node tables. It implements Graph and every
// kernel dispatch contract over global IDs, answering range, kNN, expansion
// and assignment by scatter-gather with exact boundary stitching — results
// are byte-identical to a single compiled Snapshot of the whole network.
type (
	// ShardedSet is the scatter-gather serving form of a partitioned
	// network.
	ShardedSet = shard.Set
	// ShardedSetStats describes a built set: global cardinalities, cut
	// tables and per-shard sizes.
	ShardedSetStats = shard.Stats
	// ShardedSetCounters is the cumulative scatter-gather telemetry:
	// queries, rounds, fan-out, wall and modeled critical-path time, and
	// per-shard kernel runs.
	ShardedSetCounters = shard.Counters
	// CutEdge is a network edge whose endpoints live in different shards.
	CutEdge = shard.CutEdge
)

// PartitionNetwork cuts g into k connected shards (multi-seed balloon
// growth over farthest-first seeds) and builds the sharded serving form.
func PartitionNetwork(g Graph, k int) (*ShardedSet, error) { return shard.Partition(g, k) }

// BuildShardedSet builds the sharded serving form from an explicit
// node-to-shard assignment (len NumNodes, values in [0, k)).
func BuildShardedSet(g Graph, assign []int32, k int) (*ShardedSet, error) {
	return shard.Build(g, assign, k)
}

// SaveShardedSet persists a sharded set to a directory: one snapshot file
// per shard plus a checksummed partition plan.
func SaveShardedSet(s *ShardedSet, dir string) error { return shard.Save(s, dir) }

// OpenShardedSet reloads a directory written by SaveShardedSet with zero
// store reads; every file is checksum- and invariant-verified.
func OpenShardedSet(dir string) (*ShardedSet, error) { return shard.Open(dir) }

// IsShardedSetDir reports whether dir holds a saved sharded set.
func IsShardedSetDir(dir string) bool { return shard.IsSetDir(dir) }

// RenderSVG draws the network and a clustering to w as SVG.
func RenderSVG(w io.Writer, n *Network, labels []int32, opts RenderOptions) error {
	return viz.Render(w, n, labels, opts)
}

// RenderOptions configure RenderSVG.
type RenderOptions = viz.Options

// --- Live mutable overlays (internal/delta): the write path. -------------

// LiveOverlay is an epoch-versioned mutable overlay over an immutable base
// graph: point insert/move/delete batches land in per-shard write buffers, a
// reconciler applies them atomically and publishes frozen merged views, and
// a background compactor recompiles the base when the delta grows. See
// DESIGN.md §13.
type LiveOverlay = delta.Overlay

// LiveOptions configure a LiveOverlay.
type LiveOptions = delta.Options

// LiveClusterOptions enable incrementally maintained ε-Link/DBSCAN labels.
type LiveClusterOptions = delta.LiveOptions

// LiveOp is one point mutation in a batch.
type LiveOp = delta.Op

// LiveResult reports the epoch and point count a committed batch produced.
type LiveResult = delta.Result

// LiveView is one published read view of a LiveOverlay.
type LiveView = delta.Current

// LiveStats snapshots a LiveOverlay's write-path counters.
type LiveStats = delta.Stats

// ErrLiveClosed reports a mutation against a closed overlay.
var ErrLiveClosed = delta.ErrClosed

// NewLiveOverlay wraps base (a Network or Snapshot; store readers are not
// supported) in a mutable overlay.
func NewLiveOverlay(base Graph, opts LiveOptions) (*LiveOverlay, error) {
	return delta.New(base, opts)
}

// Mutation constructors, re-exported for writers.
var (
	LiveInsert     = delta.Insert
	LiveInsertNear = delta.InsertNear
	LiveMove       = delta.Move
	LiveMoveSame   = delta.MoveSame
	LiveDelete     = delta.Delete
)
