// BenchmarkCSRSuite records the compiled-kernel trajectory into
// BENCH_csr.json: ε-range batches (narrow and wide), kNN (lone, batched SoA
// sweep), DBSCAN and k-medoids (incremental and recompute) on the same
// workload over three backends — the compiled CSR snapshot, the pointer
// Network it was compiled from, and the warm disk Store — plus the
// frontier-parallel and worker-fanned legs of the CSR-only kernels. Run it
// with
//
//	go test -run '^$' -bench CSRSuite -benchtime 1x .
//
// for a smoke pass (CI does) or with a larger -benchtime for stable numbers.
// Every backend's labels are asserted byte-identical before timing, so the
// perf harness doubles as an end-to-end kernel-equivalence check. The report
// carries the snapshot's one-shot compile time and resident bytes next to
// the min-of-N wall times; each entry records the GOMAXPROCS it ran under,
// and every csr/* workload gets a speedup over its pointer-Network baseline
// (parallel and batched variants are scored against the plain baseline of
// the same operator).
package netclus_test

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"netclus"
)

var (
	benchCSRMu      sync.Mutex
	benchCSRResults = map[string]benchCSREntry{}
)

type benchCSREntry struct {
	NsPerOp float64 `json:"ns_per_op"`
	Iters   int     `json:"iters"`
	// GOMAXPROCS is recorded per entry: parallel legs are meaningless
	// without the processor count they actually ran under.
	GOMAXPROCS int `json:"gomaxprocs"`
	// CritNsPerOp is the modeled critical path of the fused clustering
	// legs (min over iterations of Stats.CritNs): the slowest worker
	// stripe plus the serial merge, i.e. what a host with one core per
	// worker would pay. On hosts with fewer cores than workers the wall
	// time cannot scale, but the critical path still does — the same
	// convention the shard suite's crit entries use.
	CritNsPerOp float64 `json:"crit_ns_per_op,omitempty"`
}

type benchCSRReport struct {
	GoVersion  string                   `json:"go_version"`
	GOMAXPROCS int                      `json:"gomaxprocs"`
	Scale      float64                  `json:"scale"`
	Nodes      int                      `json:"nodes"`
	Points     int                      `json:"points"`
	CSR        netclus.CSRStats         `json:"csr"`
	Results    map[string]benchCSREntry `json:"results"`
	// SpeedupVsNetwork is min-of-N network time / min-of-N csr time per
	// workload, precomputed so the report reads standalone. Keys are the
	// csr/* workload suffixes; each resolves its network baseline by
	// stripping the worker leg and then trailing -variant segments
	// (knn-batch/workers=2 scores against network/knn).
	SpeedupVsNetwork map[string]float64 `json:"speedup_vs_network"`
	// ParallelScaling is crit(workers=1) / crit(workers=4) per fused
	// clustering workload: how much of the engine's work parallelizes,
	// measured on the modeled critical path so the number is meaningful
	// even when GOMAXPROCS caps the realized wall time.
	ParallelScaling map[string]float64 `json:"parallel_scaling,omitempty"`
}

func recordBenchCSR(b *testing.B, name string, nsPerOp float64) {
	recordBenchCSRCrit(b, name, nsPerOp, 0)
}

func recordBenchCSRCrit(b *testing.B, name string, nsPerOp, critNsPerOp float64) {
	b.Helper()
	benchCSRMu.Lock()
	benchCSRResults[name] = benchCSREntry{
		NsPerOp: nsPerOp, Iters: b.N, GOMAXPROCS: runtime.GOMAXPROCS(0),
		CritNsPerOp: critNsPerOp,
	}
	benchCSRMu.Unlock()
}

// minIterCrit is minIter for the fused clustering legs: fn reports each
// iteration's modeled critical path (Stats.CritNs) and both minima are
// returned — wall for the speedup map, crit for the scaling map.
func minIterCrit(b *testing.B, fn func() int64) (minNs, minCrit float64) {
	minNs, minCrit = math.Inf(1), math.Inf(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		crit := fn()
		if d := float64(time.Since(t0).Nanoseconds()); d < minNs {
			minNs = d
		}
		if c := float64(crit); c < minCrit {
			minCrit = c
		}
	}
	b.StopTimer()
	return minNs, minCrit
}

// csrParallelScaling derives crit(workers=1)/crit(workers=4) per fused
// clustering workload from the recorded entries.
func csrParallelScaling(results map[string]benchCSREntry) map[string]float64 {
	out := map[string]float64{}
	for name, w1 := range results {
		op, ok := strings.CutSuffix(name, "/workers=1")
		if !ok || w1.CritNsPerOp <= 0 {
			continue
		}
		if w4, ok := results[op+"/workers=4"]; ok && w4.CritNsPerOp > 0 {
			out[strings.TrimPrefix(op, "csr/")] = w1.CritNsPerOp / w4.CritNsPerOp
		}
	}
	return out
}

// csrSpeedups derives the speedup map from the recorded entries: every
// csr/<workload> entry is scored against network/<base>, where <base> is the
// workload with any /workers=N leg stripped and then trailing -variant
// segments removed until a network entry exists. No hardcoded workload list:
// a new csr/* leg with a network baseline scores automatically.
func csrSpeedups(results map[string]benchCSREntry) map[string]float64 {
	out := map[string]float64{}
	for name, e := range results {
		suffix, ok := strings.CutPrefix(name, "csr/")
		if !ok || e.NsPerOp <= 0 {
			continue
		}
		base := suffix
		if i := strings.Index(base, "/"); i >= 0 {
			base = base[:i]
		}
		for {
			if net, ok := results["network/"+base]; ok {
				out[suffix] = net.NsPerOp / e.NsPerOp
				break
			}
			i := strings.LastIndex(base, "-")
			if i < 0 {
				break
			}
			base = base[:i]
		}
	}
	return out
}

func BenchmarkCSRSuite(b *testing.B) {
	ctx := context.Background()
	scale := benchScale()
	g, gen, err := netclus.RoadDataset("OL", scale, 10)
	if err != nil {
		b.Fatal(err)
	}
	sn, err := netclus.Compile(g)
	if err != nil {
		b.Fatal(err)
	}
	dir := b.TempDir()
	if err := netclus.BuildStore(dir, g, netclus.StoreOptions{}); err != nil {
		b.Fatal(err)
	}
	// Warm store: default record caches, buffer big enough to hold the
	// working set, one full untimed sweep so timed runs never fault cold.
	st, err := netclus.OpenStore(dir, netclus.StoreOptions{PoolShards: 8, BufferBytes: 64 << 20})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { st.Close() })

	report := benchCSRReport{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Scale:      scale,
		Nodes:      g.NumNodes(),
		Points:     g.NumPoints(),
		CSR:        sn.Stats(),
		Results:    benchCSRResults,
	}
	b.Cleanup(func() {
		benchCSRMu.Lock()
		defer benchCSRMu.Unlock()
		if len(benchCSRResults) == 0 {
			return
		}
		report.SpeedupVsNetwork = csrSpeedups(benchCSRResults)
		report.ParallelScaling = csrParallelScaling(benchCSRResults)
		writeBenchReport(b, "BENCH_csr.json", report)
	})

	backends := []struct {
		name string
		g    netclus.Graph
	}{
		{"csr", sn},
		{"network", g},
		{"store", st},
	}
	eps := gen.Eps()
	epsWide := eps * 16
	// ε-Link links at half the DBSCAN radius: at the full radius the run
	// degenerates to a handful of giant clusters found in about one network
	// traversal, where fixed per-run costs dominate both backends. Half the
	// radius is the fine-grained regime the algorithm targets (hundreds of
	// kept clusters after min_sup) and keeps the legs traversal-bound.
	epsEL := eps * 0.5
	rng := rand.New(rand.NewSource(1))
	probes := make([]netclus.PointID, 256)
	for i := range probes {
		probes[i] = netclus.PointID(rng.Intn(g.NumPoints()))
	}
	// Wide-range legs expand most of the network per query; a smaller probe
	// set keeps the suite's wall time in line with the narrow legs.
	wideProbes := probes[:32]

	// Label equivalence across all backends before any timing, both
	// k-medoids modes (the incremental default and the recompute ablation
	// both ride the Δ-stepping expansion on snapshots).
	var wantDB, wantKM, wantMP, wantEL []int32
	for _, bk := range backends {
		db, err := netclus.DBSCANCtx(ctx, bk.g, netclus.DBSCANOptions{Eps: eps, MinPts: 3})
		if err != nil {
			b.Fatal(err)
		}
		km, err := netclus.KMedoidsCtx(ctx, bk.g, netclus.KMedoidsOptions{K: 10})
		if err != nil {
			b.Fatal(err)
		}
		mp, err := netclus.KMedoidsCtx(ctx, bk.g, netclus.KMedoidsOptions{K: 10, Recompute: true})
		if err != nil {
			b.Fatal(err)
		}
		el, err := netclus.EpsLinkCtx(ctx, bk.g, netclus.EpsLinkOptions{Eps: epsEL, MinSup: 3})
		if err != nil {
			b.Fatal(err)
		}
		if bk.name == "csr" {
			wantDB, wantKM, wantMP, wantEL = db.Labels, km.Labels, mp.Labels, el.Labels
			continue
		}
		if !reflect.DeepEqual(wantDB, db.Labels) || !reflect.DeepEqual(wantKM, km.Labels) ||
			!reflect.DeepEqual(wantMP, mp.Labels) || !reflect.DeepEqual(wantEL, el.Labels) {
			b.Fatalf("backend %s: labels differ from csr", bk.name)
		}
	}
	// The fused engine (Workers >= 1 on the snapshot) must reproduce the
	// sequential labels exactly before its legs are timed.
	for _, workers := range []int{1, 4} {
		db, err := netclus.DBSCANCtx(ctx, sn, netclus.DBSCANOptions{Eps: eps, MinPts: 3, Workers: workers})
		if err != nil {
			b.Fatal(err)
		}
		el, err := netclus.EpsLinkCtx(ctx, sn, netclus.EpsLinkOptions{Eps: epsEL, MinSup: 3, Workers: workers})
		if err != nil {
			b.Fatal(err)
		}
		if !reflect.DeepEqual(wantDB, db.Labels) || !reflect.DeepEqual(wantEL, el.Labels) {
			b.Fatalf("fused engine workers=%d: labels differ from sequential", workers)
		}
	}

	for _, bk := range backends {
		bk := bk
		b.Run(bk.name+"/range", func(b *testing.B) {
			sc := netclus.ScratchFor(bk.g)
			minNs := minIter(b, func() {
				for _, p := range probes {
					if _, err := sc.RangeQueryCtx(ctx, bk.g, p, eps); err != nil {
						b.Fatal(err)
					}
				}
			})
			recordBenchCSR(b, bk.name+"/range", minNs)
		})
		b.Run(bk.name+"/range-wide", func(b *testing.B) {
			sc := netclus.ScratchFor(bk.g)
			minNs := minIter(b, func() {
				for _, p := range wideProbes {
					if _, err := sc.RangeQueryDistCtx(ctx, bk.g, p, epsWide); err != nil {
						b.Fatal(err)
					}
				}
			})
			recordBenchCSR(b, bk.name+"/range-wide", minNs)
		})
		b.Run(bk.name+"/knn", func(b *testing.B) {
			minNs := minIter(b, func() {
				for _, p := range probes {
					if _, err := netclus.KNearestNeighborsCtx(ctx, bk.g, p, 10); err != nil {
						b.Fatal(err)
					}
				}
			})
			recordBenchCSR(b, bk.name+"/knn", minNs)
		})
		b.Run(bk.name+"/dbscan", func(b *testing.B) {
			minNs := minIter(b, func() {
				if _, err := netclus.DBSCANCtx(ctx, bk.g, netclus.DBSCANOptions{Eps: eps, MinPts: 3}); err != nil {
					b.Fatal(err)
				}
			})
			recordBenchCSR(b, bk.name+"/dbscan", minNs)
		})
		b.Run(bk.name+"/epslink", func(b *testing.B) {
			minNs := minIter(b, func() {
				if _, err := netclus.EpsLinkCtx(ctx, bk.g, netclus.EpsLinkOptions{Eps: epsEL, MinSup: 3}); err != nil {
					b.Fatal(err)
				}
			})
			recordBenchCSR(b, bk.name+"/epslink", minNs)
		})
		b.Run(bk.name+"/kmedoids", func(b *testing.B) {
			minNs := minIter(b, func() {
				if _, err := netclus.KMedoidsCtx(ctx, bk.g, netclus.KMedoidsOptions{K: 10}); err != nil {
					b.Fatal(err)
				}
			})
			recordBenchCSR(b, bk.name+"/kmedoids", minNs)
		})
		b.Run(bk.name+"/kmedoids-mp", func(b *testing.B) {
			minNs := minIter(b, func() {
				if _, err := netclus.KMedoidsCtx(ctx, bk.g, netclus.KMedoidsOptions{K: 10, Recompute: true}); err != nil {
					b.Fatal(err)
				}
			})
			recordBenchCSR(b, bk.name+"/kmedoids-mp", minNs)
		})
	}

	// CSR-only kernels: the batched multi-source range mode, the
	// frontier-parallel wide range, and the batched SoA kNN sweep, each at
	// worker counts 1/2/4 so the report shows the parallel trajectory even
	// when GOMAXPROCS caps the realized speedup.
	for _, workers := range []int{1, 2, 4} {
		workers := workers
		b.Run(fmt.Sprintf("csr/range-each/workers=%d", workers), func(b *testing.B) {
			minNs := minIter(b, func() {
				err := sn.RangeEach(ctx, probes, eps, workers,
					func(int, netclus.PointID, []netclus.PointID, []float64) error { return nil })
				if err != nil {
					b.Fatal(err)
				}
			})
			recordBenchCSR(b, fmt.Sprintf("csr/range-each/workers=%d", workers), minNs)
		})
		b.Run(fmt.Sprintf("csr/range-wide-par/workers=%d", workers), func(b *testing.B) {
			// Reuse one result buffer across probes, like the sequential
			// legs reuse their scratch result slice.
			var buf []netclus.PointDist
			minNs := minIter(b, func() {
				for _, p := range wideProbes {
					res, err := sn.RangeQueryDistParallelInto(ctx, p, epsWide, workers, buf)
					if err != nil {
						b.Fatal(err)
					}
					buf = res
				}
			})
			recordBenchCSR(b, fmt.Sprintf("csr/range-wide-par/workers=%d", workers), minNs)
		})
		b.Run(fmt.Sprintf("csr/dbscan/workers=%d", workers), func(b *testing.B) {
			minNs, minCrit := minIterCrit(b, func() int64 {
				res, err := netclus.DBSCANCtx(ctx, sn, netclus.DBSCANOptions{Eps: eps, MinPts: 3, Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				return res.Stats.CritNs
			})
			recordBenchCSRCrit(b, fmt.Sprintf("csr/dbscan/workers=%d", workers), minNs, minCrit)
		})
		b.Run(fmt.Sprintf("csr/epslink/workers=%d", workers), func(b *testing.B) {
			minNs, minCrit := minIterCrit(b, func() int64 {
				res, err := netclus.EpsLinkCtx(ctx, sn, netclus.EpsLinkOptions{Eps: epsEL, MinSup: 3, Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				return res.Stats.CritNs
			})
			recordBenchCSRCrit(b, fmt.Sprintf("csr/epslink/workers=%d", workers), minNs, minCrit)
		})
		b.Run(fmt.Sprintf("csr/knn-batch/workers=%d", workers), func(b *testing.B) {
			kb := sn.NewKNNBatch()
			minNs := minIter(b, func() {
				kb.Reset()
				for _, p := range probes {
					kb.Add(p, 10)
				}
				if err := kb.Run(ctx, workers); err != nil {
					b.Fatal(err)
				}
			})
			recordBenchCSR(b, fmt.Sprintf("csr/knn-batch/workers=%d", workers), minNs)
		})
	}
}
