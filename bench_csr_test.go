// BenchmarkCSRSuite records the compiled-kernel trajectory into
// BENCH_csr.json: ε-range batches, kNN batches, DBSCAN and k-medoids on the
// same workload over three backends — the compiled CSR snapshot, the pointer
// Network it was compiled from, and the warm disk Store. Run it with
//
//	go test -run '^$' -bench CSRSuite -benchtime 1x .
//
// for a smoke pass (CI does) or with a larger -benchtime for stable numbers.
// Every backend's labels are asserted byte-identical before timing, so the
// perf harness doubles as an end-to-end kernel-equivalence check. The report
// carries the snapshot's one-shot compile time and resident bytes next to
// the min-of-N wall times, plus each workload's speedup over the pointer
// Network.
package netclus_test

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"sync"
	"testing"

	"netclus"
)

var (
	benchCSRMu      sync.Mutex
	benchCSRResults = map[string]benchCSREntry{}
)

type benchCSREntry struct {
	NsPerOp float64 `json:"ns_per_op"`
	Iters   int     `json:"iters"`
}

type benchCSRReport struct {
	GoVersion  string                   `json:"go_version"`
	GOMAXPROCS int                      `json:"gomaxprocs"`
	Scale      float64                  `json:"scale"`
	Nodes      int                      `json:"nodes"`
	Points     int                      `json:"points"`
	CSR        netclus.CSRStats         `json:"csr"`
	Results    map[string]benchCSREntry `json:"results"`
	// SpeedupVsNetwork is min-of-N network time / min-of-N csr time per
	// workload, precomputed so the report reads standalone.
	SpeedupVsNetwork map[string]float64 `json:"speedup_vs_network"`
}

func recordBenchCSR(b *testing.B, name string, nsPerOp float64) {
	b.Helper()
	benchCSRMu.Lock()
	benchCSRResults[name] = benchCSREntry{NsPerOp: nsPerOp, Iters: b.N}
	benchCSRMu.Unlock()
}

func BenchmarkCSRSuite(b *testing.B) {
	ctx := context.Background()
	scale := benchScale()
	g, gen, err := netclus.RoadDataset("OL", scale, 10)
	if err != nil {
		b.Fatal(err)
	}
	sn, err := netclus.Compile(g)
	if err != nil {
		b.Fatal(err)
	}
	dir := b.TempDir()
	if err := netclus.BuildStore(dir, g, netclus.StoreOptions{}); err != nil {
		b.Fatal(err)
	}
	// Warm store: default record caches, buffer big enough to hold the
	// working set, one full untimed sweep so timed runs never fault cold.
	st, err := netclus.OpenStore(dir, netclus.StoreOptions{PoolShards: 8, BufferBytes: 64 << 20})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { st.Close() })

	report := benchCSRReport{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Scale:      scale,
		Nodes:      g.NumNodes(),
		Points:     g.NumPoints(),
		CSR:        sn.Stats(),
		Results:    benchCSRResults,
	}
	b.Cleanup(func() {
		benchCSRMu.Lock()
		defer benchCSRMu.Unlock()
		if len(benchCSRResults) == 0 {
			return
		}
		report.SpeedupVsNetwork = map[string]float64{}
		for name, e := range benchCSRResults {
			var workload string
			if _, err := fmt.Sscanf(name, "csr/%s", &workload); err != nil {
				continue
			}
			if net, ok := benchCSRResults["network/"+workload]; ok && e.NsPerOp > 0 {
				report.SpeedupVsNetwork[workload] = net.NsPerOp / e.NsPerOp
			}
		}
		writeBenchReport(b, "BENCH_csr.json", report)
	})

	backends := []struct {
		name string
		g    netclus.Graph
	}{
		{"csr", sn},
		{"network", g},
		{"store", st},
	}
	eps := gen.Eps()
	rng := rand.New(rand.NewSource(1))
	probes := make([]netclus.PointID, 256)
	for i := range probes {
		probes[i] = netclus.PointID(rng.Intn(g.NumPoints()))
	}

	// Label equivalence across all backends before any timing.
	var wantDB []int32
	var wantKM []int32
	for _, bk := range backends {
		db, err := netclus.DBSCANCtx(ctx, bk.g, netclus.DBSCANOptions{Eps: eps, MinPts: 3})
		if err != nil {
			b.Fatal(err)
		}
		km, err := netclus.KMedoidsCtx(ctx, bk.g, netclus.KMedoidsOptions{K: 10})
		if err != nil {
			b.Fatal(err)
		}
		if bk.name == "csr" {
			wantDB, wantKM = db.Labels, km.Labels
			continue
		}
		if !reflect.DeepEqual(wantDB, db.Labels) || !reflect.DeepEqual(wantKM, km.Labels) {
			b.Fatalf("backend %s: labels differ from csr", bk.name)
		}
	}

	for _, bk := range backends {
		bk := bk
		b.Run(bk.name+"/range", func(b *testing.B) {
			sc := netclus.ScratchFor(bk.g)
			minNs := minIter(b, func() {
				for _, p := range probes {
					if _, err := sc.RangeQueryCtx(ctx, bk.g, p, eps); err != nil {
						b.Fatal(err)
					}
				}
			})
			recordBenchCSR(b, bk.name+"/range", minNs)
		})
		b.Run(bk.name+"/knn", func(b *testing.B) {
			minNs := minIter(b, func() {
				for _, p := range probes {
					if _, err := netclus.KNearestNeighborsCtx(ctx, bk.g, p, 10); err != nil {
						b.Fatal(err)
					}
				}
			})
			recordBenchCSR(b, bk.name+"/knn", minNs)
		})
		b.Run(bk.name+"/dbscan", func(b *testing.B) {
			minNs := minIter(b, func() {
				if _, err := netclus.DBSCANCtx(ctx, bk.g, netclus.DBSCANOptions{Eps: eps, MinPts: 3}); err != nil {
					b.Fatal(err)
				}
			})
			recordBenchCSR(b, bk.name+"/dbscan", minNs)
		})
		b.Run(bk.name+"/kmedoids", func(b *testing.B) {
			minNs := minIter(b, func() {
				if _, err := netclus.KMedoidsCtx(ctx, bk.g, netclus.KMedoidsOptions{K: 10}); err != nil {
					b.Fatal(err)
				}
			})
			recordBenchCSR(b, bk.name+"/kmedoids", minNs)
		})
	}

	// The batched multi-source mode is CSR-only: the full probe set fanned
	// across workers with pooled scratch.
	workerCounts := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		workerCounts = append(workerCounts, n)
	}
	for _, workers := range workerCounts {
		workers := workers
		b.Run(fmt.Sprintf("csr/range-each/workers=%d", workers), func(b *testing.B) {
			minNs := minIter(b, func() {
				err := sn.RangeEach(ctx, probes, eps, workers,
					func(int, netclus.PointID, []netclus.PointID, []float64) error { return nil })
				if err != nil {
					b.Fatal(err)
				}
			})
			recordBenchCSR(b, fmt.Sprintf("csr/range-each/workers=%d", workers), minNs)
		})
	}
}
