// BenchmarkPruneSuite records the lower-bound pruning trajectory into
// BENCH_prune.json: pruned vs unpruned range queries, kNN batches, DBSCAN and
// k-medoids at 1/4/8 workers, on a grid dataset and the OL road stand-in.
// Run it with
//
//	go test -run '^$' -bench PruneSuite -benchtime 1x .
//
// for a smoke pass (CI does) or with a larger -benchtime for stable numbers.
//
// All operators run against the disk-backed store in the paper's access
// regime — record caches off, buffer pool sized well below the store (the
// paper's 1 MB pool against larger datasets) — because that is the regime the
// filter targets: lower-bound tables answer in memory what the traversal
// would otherwise answer with page reads. Range, DBSCAN and k-medoids use the
// paper's clustered workload; kNN uses a sparse uniform POI set on the same
// networks, the standard network-kNN workload (with ~3 clustered points per
// edge, most nearest neighbours sit on the query's own edge and there is
// nothing for any method to traverse). Every pruned run is compared against
// its unpruned twin, so the perf harness doubles as an end-to-end exactness
// check; prune counters and physical page reads land in the report to prove
// the filter fired and what it saved.
package netclus_test

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"netclus"
)

var (
	benchPruneMu      sync.Mutex
	benchPruneResults = map[string]benchPruneEntry{}
)

type benchPruneEntry struct {
	NsPerOp     float64             `json:"ns_per_op"`
	Iters       int                 `json:"iters"`
	PhysReadsOp float64             `json:"phys_reads_per_op"`
	Prune       *netclus.PruneStats `json:"prune,omitempty"`
}

type benchPruneDataset struct {
	Nodes        int     `json:"nodes"`
	Points       int     `json:"points"`
	Landmarks    int     `json:"landmarks"`
	Euclidean    bool    `json:"euclidean"`
	PreprocessMs float64 `json:"preprocess_ms"`
	TableKB      int     `json:"table_kb"`
	Eps          float64 `json:"eps,omitempty"`
	StoreKB      int     `json:"store_kb"`
	BufferKB     int     `json:"buffer_kb"`
}

type benchPruneReport struct {
	GoVersion  string                       `json:"go_version"`
	GOMAXPROCS int                          `json:"gomaxprocs"`
	Scale      float64                      `json:"scale"`
	Datasets   map[string]benchPruneDataset `json:"datasets"`
	Results    map[string]benchPruneEntry   `json:"results"`
}

// recordBenchPrune stores one JSON row. nsPerOp is the MINIMUM time over the
// b.N iterations, not the mean: the iteration is identical deterministic work
// every time (physical reads repeat exactly), so the minimum is the run's
// cost and the spread is scheduler noise. Both modes are summarised the same
// way, so the pruned/unpruned comparison stays symmetric.
func recordBenchPrune(b *testing.B, name string, nsPerOp float64, physReads int64, ps *netclus.PruneStats) {
	b.Helper()
	benchPruneMu.Lock()
	benchPruneResults[name] = benchPruneEntry{
		NsPerOp:     nsPerOp,
		Iters:       b.N,
		PhysReadsOp: float64(physReads) / float64(b.N),
		Prune:       ps,
	}
	benchPruneMu.Unlock()
}

// benchStore materialises g as a disk-backed store under dir and opens it in
// the paper's access regime: no record caches, buffer pool ~5% of the store.
func benchStore(b *testing.B, dir string, g *netclus.Network) (*netclus.Store, int, int) {
	b.Helper()
	if err := netclus.BuildStore(dir, g, netclus.StoreOptions{}); err != nil {
		b.Fatal(err)
	}
	var storeBytes int64
	err := filepath.Walk(dir, func(_ string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() {
			storeBytes += info.Size()
		}
		return err
	})
	if err != nil {
		b.Fatal(err)
	}
	bufBytes := int(storeBytes / 20)
	if min := 4 * 4096; bufBytes < min {
		bufBytes = min
	}
	st, err := netclus.OpenStore(dir, netclus.StoreOptions{
		DisableRecordCaches: true,
		BufferBytes:         bufBytes,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { st.Close() })
	return st, int(storeBytes / 1024), bufBytes / 1024
}

func pruneProbes(n, numPoints int, seed int64) []netclus.PointID {
	rng := rand.New(rand.NewSource(seed))
	probes := make([]netclus.PointID, n)
	for i := range probes {
		probes[i] = netclus.PointID(rng.Intn(numPoints))
	}
	return probes
}

func BenchmarkPruneSuite(b *testing.B) {
	scale := benchScale()
	report := benchPruneReport{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Scale:      scale,
		Datasets:   map[string]benchPruneDataset{},
		Results:    benchPruneResults,
	}
	b.Cleanup(func() {
		benchPruneMu.Lock()
		defer benchPruneMu.Unlock()
		if len(benchPruneResults) == 0 {
			return
		}
		writeBenchReport(b, "BENCH_prune.json", report)
	})

	type dataset struct {
		name   string
		g      *netclus.Network // paper's clustered workload
		sparse *netclus.Network // uniform POIs on the same base network
		eps    float64
	}
	var datasets []dataset

	// Grid dataset: jittered lattice, clustered points + sparse uniform POIs.
	{
		rng := rand.New(rand.NewSource(1))
		side := 40 + int(120*scale*4)
		base, err := netclus.GridNetwork(side, side, 1.0, 0.4, side*side/5, rng)
		if err != nil {
			b.Fatal(err)
		}
		cfg := netclus.DefaultClusterConfig(side*side/2, 10, 0.05)
		g, err := netclus.GeneratePoints(base, cfg, rng)
		if err != nil {
			b.Fatal(err)
		}
		sparse, err := netclus.GenerateUniform(base, base.NumNodes()/2, rand.New(rand.NewSource(11)))
		if err != nil {
			b.Fatal(err)
		}
		datasets = append(datasets, dataset{name: "grid", g: g, sparse: sparse, eps: cfg.Eps()})
	}
	// OL road stand-in with the paper's clustered workload. The road scale is
	// floored so the store stays several times the buffer pool even at the
	// smoke scale — a road network smaller than the pool has no page misses
	// left for the filter to save and measures nothing.
	{
		roadScale := scale
		if roadScale < 0.25 {
			roadScale = 0.25
		}
		g, gen, err := netclus.RoadDataset("OL", roadScale, 10)
		if err != nil {
			b.Fatal(err)
		}
		base, err := netclus.RoadNetwork("OL", roadScale)
		if err != nil {
			b.Fatal(err)
		}
		sparse, err := netclus.GenerateUniform(base, base.NumNodes()/2, rand.New(rand.NewSource(11)))
		if err != nil {
			b.Fatal(err)
		}
		datasets = append(datasets, dataset{name: "OL", g: g, sparse: sparse, eps: gen.Eps()})
	}

	for _, ds := range datasets {
		ds := ds
		t0 := time.Now()
		bounds, err := netclus.BuildBounds(ds.g, netclus.BoundsOptions{EuclideanLB: true})
		if err != nil {
			b.Fatal(err)
		}
		preprocess := time.Since(t0)
		sparseBounds, err := netclus.BuildBounds(ds.sparse, netclus.BoundsOptions{EuclideanLB: true})
		if err != nil {
			b.Fatal(err)
		}
		st, storeKB, bufKB := benchStore(b, b.TempDir(), ds.g)
		sparseSt, _, _ := benchStore(b, b.TempDir(), ds.sparse)

		bst := bounds.Stats()
		report.Datasets[ds.name] = benchPruneDataset{
			Nodes:        ds.g.NumNodes(),
			Points:       ds.g.NumPoints(),
			Landmarks:    bst.Landmarks,
			Euclidean:    bst.Euclidean,
			PreprocessMs: float64(preprocess.Microseconds()) / 1000,
			TableKB:      bst.TableBytes / 1024,
			Eps:          ds.eps,
			StoreKB:      storeKB,
			BufferKB:     bufKB,
		}

		// ε-range queries over a fixed random probe set, on the clustered
		// store (DBSCAN's inner loop, benchmarked in isolation).
		probes := pruneProbes(256, ds.g.NumPoints(), 2)
		for _, pruned := range []bool{false, true} {
			pruned := pruned
			mode := map[bool]string{false: "unpruned", true: "pruned"}[pruned]
			name := fmt.Sprintf("range/%s/%s", ds.name, mode)
			b.Run(name, func(b *testing.B) {
				scratch := netclus.NewRangeScratch(st)
				if pruned {
					scratch.SetBounder(bounds)
				}
				s0 := st.Stats()
				minNs := minIter(b, func() {
					for _, p := range probes {
						if _, err := scratch.RangeQuery(st, p, ds.eps); err != nil {
							b.Fatal(err)
						}
					}
				})
				var ps *netclus.PruneStats
				if pruned {
					v := scratch.PruneStats()
					ps = &v
				}
				recordBenchPrune(b, name, minNs, st.Stats().Sub(s0).PhysicalReads, ps)
			})
		}

		// kNN batches over the sparse POI store.
		knnProbes := pruneProbes(256, ds.sparse.NumPoints(), 2)
		for _, pruned := range []bool{false, true} {
			pruned := pruned
			mode := map[bool]string{false: "unpruned", true: "pruned"}[pruned]
			name := fmt.Sprintf("knn/%s/%s", ds.name, mode)
			b.Run(name, func(b *testing.B) {
				var ps netclus.PruneStats
				s0 := sparseSt.Stats()
				minNs := minIter(b, func() {
					for _, p := range knnProbes {
						if pruned {
							if _, err := netclus.KNearestNeighborsPruned(sparseSt, sparseBounds, p, 10, &ps); err != nil {
								b.Fatal(err)
							}
						} else {
							if _, err := netclus.KNearestNeighbors(sparseSt, p, 10); err != nil {
								b.Fatal(err)
							}
						}
					}
				})
				var out *netclus.PruneStats
				if pruned {
					out = &ps
				}
				recordBenchPrune(b, name, minNs, sparseSt.Stats().Sub(s0).PhysicalReads, out)
			})
		}

		// DBSCAN and k-medoids at 1/4/8 workers (worker counts above
		// GOMAXPROCS are skipped: on fewer cores they only measure scheduler
		// churn), pruned vs unpruned, with a label equivalence check per
		// dataset.
		workerCounts := []int{1}
		for _, w := range []int{4, 8} {
			if w <= runtime.GOMAXPROCS(0) {
				workerCounts = append(workerCounts, w)
			}
		}
		var labelRef []int32
		for _, workers := range workerCounts {
			for _, pruned := range []bool{false, true} {
				workers, pruned := workers, pruned
				mode := map[bool]string{false: "unpruned", true: "pruned"}[pruned]
				name := fmt.Sprintf("dbscan/%s/workers=%d/%s", ds.name, workers, mode)
				b.Run(name, func(b *testing.B) {
					opts := netclus.DBSCANOptions{Eps: ds.eps, MinPts: 3, Workers: workers}
					if pruned {
						opts.Prune = bounds
					}
					var res *netclus.DBSCANResult
					s0 := st.Stats()
					minNs := minIter(b, func() {
						var err error
						if res, err = netclus.DBSCAN(st, opts); err != nil {
							b.Fatal(err)
						}
					})
					var ps *netclus.PruneStats
					if pruned {
						ps = &res.Stats.Prune
					}
					recordBenchPrune(b, name, minNs, st.Stats().Sub(s0).PhysicalReads, ps)
					if labelRef == nil {
						labelRef = res.Labels
					} else {
						for i := range labelRef {
							if res.Labels[i] != labelRef[i] {
								b.Fatalf("%s: label %d = %d, reference %d", name, i, res.Labels[i], labelRef[i])
							}
						}
					}
				})
			}
		}
		for _, workers := range workerCounts {
			for _, pruned := range []bool{false, true} {
				workers, pruned := workers, pruned
				mode := map[bool]string{false: "unpruned", true: "pruned"}[pruned]
				name := fmt.Sprintf("kmedoids/%s/workers=%d/%s", ds.name, workers, mode)
				b.Run(name, func(b *testing.B) {
					var res *netclus.KMedoidsResult
					s0 := st.Stats()
					minNs := minIter(b, func() {
						opts := netclus.KMedoidsOptions{
							K: 10, Workers: workers, Rand: rand.New(rand.NewSource(3)),
						}
						if pruned {
							opts.Prune = bounds
						}
						var err error
						if res, err = netclus.KMedoids(st, opts); err != nil {
							b.Fatal(err)
						}
					})
					var ps *netclus.PruneStats
					if pruned {
						ps = &res.Stats.Prune
					}
					recordBenchPrune(b, name, minNs, st.Stats().Sub(s0).PhysicalReads, ps)
				})
			}
		}
	}
}
