// BenchmarkDeltaSuite records the live-overlay write path into
// BENCH_delta.json: read latency percentiles with and without a concurrent
// mutation stream, single-op incremental re-cluster cost against a full
// DBSCAN recompute, write-apply latency, and the compaction pause. Run with
//
//	go test -run '^$' -bench DeltaSuite -benchtime 1x .
//
// for a smoke pass (CI does) or a larger -benchtime for stable numbers.
// Before any timing the live labelling is asserted equal to a from-scratch
// recompute on the merged view, so the perf harness doubles as an
// equivalence check on a mutated overlay.
//
// The gate scores the serving contract: read_under_write_p99_ratio is the
// range p99 with the writer running over the read-only p99 (the overlay must
// not let mutations stall readers — views are frozen, compile is off the
// critical path), and incremental_speedup is the full recompute cost over
// the apply+label cost of a single-point move (the maintained labelling must
// beat re-running DBSCAN by a wide margin for point updates).
package netclus_test

import (
	"context"
	"math/rand"
	"reflect"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"netclus"
)

type deltaLatencyEntry struct {
	P50NS   float64 `json:"p50_ns"`
	P95NS   float64 `json:"p95_ns"`
	P99NS   float64 `json:"p99_ns"`
	MaxNS   float64 `json:"max_ns"`
	Queries int     `json:"queries"`
}

type deltaIncrementalEntry struct {
	// ApplyNS is the whole write-apply wall (resolve + freeze + maintain +
	// publish); MaintainNS is the labelling maintenance share of it (ε-graph
	// repair, re-floods, derivation) reported by the overlay itself. The
	// speedup compares re-clustering work against re-clustering work:
	// maintain + label read vs a full DBSCAN recompute on the same view —
	// the apply machinery around it is paid identically either way.
	ApplyNS         float64 `json:"apply_ns"`
	MaintainNS      float64 `json:"maintain_ns"`
	LabelNS         float64 `json:"label_ns"`
	IncrementalNS   float64 `json:"incremental_ns"`
	FullRecomputeNS float64 `json:"full_recompute_ns"`
	Speedup         float64 `json:"speedup"`
}

type deltaWriteEntry struct {
	P50NS    float64 `json:"p50_ns"`
	P99NS    float64 `json:"p99_ns"`
	Batches  int64   `json:"batches"`
	Ops      int64   `json:"ops"`
	Rejected int64   `json:"rejected"`
}

type deltaCompactionEntry struct {
	Count         int64   `json:"count"`
	LastPauseMS   float64 `json:"last_pause_ms"`
	MaxPauseMS    float64 `json:"max_pause_ms"`
	LastCompileMS float64 `json:"last_compile_ms"`
}

type deltaGate struct {
	// ReadUnderWriteP99Ratio = p99(range, writer running) / p99(range, idle).
	ReadUnderWriteP99Ratio float64 `json:"read_under_write_p99_ratio"`
	// IncrementalSpeedup = full DBSCAN recompute / (apply + label read) for a
	// single-point move on the live overlay.
	IncrementalSpeedup float64 `json:"incremental_speedup"`
	MaxCompactPauseMS  float64 `json:"max_compact_pause_ms"`
}

type benchDeltaReport struct {
	GoVersion      string                 `json:"go_version"`
	GOMAXPROCS     int                    `json:"gomaxprocs"`
	Scale          float64                `json:"scale"`
	Nodes          int                    `json:"nodes"`
	Edges          int                    `json:"edges"`
	Points         int                    `json:"points"`
	RangeEps       float64                `json:"range_eps"`
	ClusterEps     float64                `json:"cluster_eps"`
	MinPts         int                    `json:"min_pts"`
	ReadOnly       *deltaLatencyEntry     `json:"read_only_range,omitempty"`
	ReadUnderWrite *deltaLatencyEntry     `json:"read_under_write_range,omitempty"`
	WriteApply     *deltaWriteEntry       `json:"write_apply,omitempty"`
	Incremental    *deltaIncrementalEntry `json:"incremental_recluster,omitempty"`
	Compaction     *deltaCompactionEntry  `json:"compaction,omitempty"`
	Gate           deltaGate              `json:"gate"`
}

// durPct returns the p-th percentile (nearest-rank) of the latencies in ns.
func durPct(lats []time.Duration, p float64) float64 {
	if len(lats) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), lats...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	i := int(p/100*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return float64(sorted[i].Nanoseconds())
}

func latencyEntry(lats []time.Duration) *deltaLatencyEntry {
	return &deltaLatencyEntry{
		P50NS:   durPct(lats, 50),
		P95NS:   durPct(lats, 95),
		P99NS:   durPct(lats, 99),
		MaxNS:   durPct(lats, 100),
		Queries: len(lats),
	}
}

// rangeSweep runs every probe once against the overlay's current view and
// returns per-query latencies. The scratch is re-allocated only when the
// epoch moves (a frozen view never changes size underneath it), mirroring
// how the server allocates per-epoch scratch for live datasets. With yield
// set, an untimed sleep between probes hands the scheduler to the writer
// goroutine — on a single-core host a pure compute loop would otherwise
// starve it and the "under write" phase would silently measure idle reads.
func rangeSweep(ctx context.Context, b *testing.B, ov *netclus.LiveOverlay, probes []netclus.PointID, eps float64, yield bool) []time.Duration {
	b.Helper()
	cur := ov.Current()
	sc := netclus.ScratchFor(cur.Graph)
	lats := make([]time.Duration, 0, len(probes))
	for _, p := range probes {
		if yield {
			time.Sleep(20 * time.Microsecond)
		}
		if now := ov.Current(); now.Epoch != cur.Epoch {
			cur = now
			sc = netclus.ScratchFor(cur.Graph)
		}
		t0 := time.Now()
		_, err := sc.RangeQueryDistCtx(ctx, cur.Graph, p, eps)
		d := time.Since(t0)
		if err != nil {
			// A probe deleted by the concurrent writer is expected; its
			// latency is not a range-query latency, so drop the sample.
			if ctx.Err() != nil {
				b.Fatal(err)
			}
			continue
		}
		lats = append(lats, d)
	}
	return lats
}

func BenchmarkDeltaSuite(b *testing.B) {
	ctx := context.Background()
	scale := benchScale()
	g, gen, err := netclus.RoadDataset("TG", scale, 10)
	if err != nil {
		b.Fatal(err)
	}
	sn, err := netclus.Compile(g)
	if err != nil {
		b.Fatal(err)
	}
	clusterEps, minPts := gen.Eps(), 3
	rangeEps := gen.Eps() * 32
	var epoch atomic.Int64
	epoch.Store(1)
	ov, err := netclus.NewLiveOverlay(sn, netclus.LiveOptions{
		Bump:       func() int64 { return epoch.Add(1) },
		CompactOps: 1 << 30, // compaction driven explicitly below
		Live:       &netclus.LiveClusterOptions{Eps: clusterEps, MinPts: minPts},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer ov.Close()

	rng := rand.New(rand.NewSource(1))
	probes := make([]netclus.PointID, 256)
	for i := range probes {
		probes[i] = netclus.PointID(rng.Intn(g.NumPoints()))
	}

	// Equivalence before timing: mutate the overlay, then the maintained
	// labelling must match a from-scratch DBSCAN on the merged view.
	for i := 0; i < 8; i++ {
		ops := []netclus.LiveOp{
			netclus.LiveInsertNear(probes[i], 0.5, 0),
			netclus.LiveMoveSame(probes[i+8], 0.25),
		}
		if _, err := ov.Apply(ctx, ops); err != nil {
			b.Fatal(err)
		}
	}
	cur := ov.Current()
	live, _, _, ok := cur.LiveDBSCAN(clusterEps, minPts)
	if !ok {
		b.Fatal("live labelling unavailable")
	}
	want, err := netclus.DBSCANCtx(ctx, cur.Graph, netclus.DBSCANOptions{Eps: clusterEps, MinPts: minPts})
	if err != nil {
		b.Fatal(err)
	}
	if !reflect.DeepEqual(append([]int32(nil), live...), want.Labels) {
		b.Fatal("live labels differ from a from-scratch recompute on the merged view")
	}

	report := benchDeltaReport{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Scale:      scale,
		Nodes:      g.NumNodes(),
		Edges:      g.NumEdges(),
		Points:     g.NumPoints(),
		RangeEps:   rangeEps,
		ClusterEps: clusterEps,
		MinPts:     minPts,
	}
	b.Cleanup(func() {
		if report.ReadOnly == nil || report.ReadUnderWrite == nil {
			return // partial -bench run: nothing to score, keep the old report
		}
		if report.ReadOnly.P99NS > 0 {
			report.Gate.ReadUnderWriteP99Ratio = report.ReadUnderWrite.P99NS / report.ReadOnly.P99NS
		}
		if report.Incremental != nil {
			report.Gate.IncrementalSpeedup = report.Incremental.Speedup
		}
		if report.Compaction != nil {
			report.Gate.MaxCompactPauseMS = report.Compaction.MaxPauseMS
		}
		writeBenchReport(b, "BENCH_delta.json", report)
	})

	b.Run("read-only", func(b *testing.B) {
		runtime.GC()
		var lats []time.Duration
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			lats = append(lats, rangeSweep(ctx, b, ov, probes, rangeEps, false)...)
		}
		b.StopTimer()
		report.ReadOnly = latencyEntry(lats)
	})

	b.Run("read-under-write", func(b *testing.B) {
		runtime.GC()
		stop := make(chan struct{})
		var wg sync.WaitGroup
		var applyLats []time.Duration
		statsBefore := ov.Stats()
		wg.Add(1)
		go func() {
			defer wg.Done()
			wrng := rand.New(rand.NewSource(2))
			livePoints := int64(ov.Stats().Points)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				p := netclus.PointID(wrng.Int63n(livePoints))
				var ops []netclus.LiveOp
				switch i % 4 {
				case 0:
					ops = []netclus.LiveOp{netclus.LiveInsertNear(p, wrng.Float64(), 0)}
				case 3:
					ops = []netclus.LiveOp{netclus.LiveDelete(p)}
				default:
					ops = []netclus.LiveOp{netclus.LiveMoveSame(p, wrng.Float64())}
				}
				t0 := time.Now()
				res, err := ov.Apply(ctx, ops)
				if err == nil {
					applyLats = append(applyLats, time.Since(t0))
					livePoints = int64(res.Points)
				}
				// Keep the stream a background drip, not a saturating flood:
				// the gate models serving reads while writes trickle in.
				time.Sleep(200 * time.Microsecond)
			}
		}()
		var lats []time.Duration
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			lats = append(lats, rangeSweep(ctx, b, ov, probes, rangeEps, true)...)
		}
		b.StopTimer()
		close(stop)
		wg.Wait()
		report.ReadUnderWrite = latencyEntry(lats)
		statsAfter := ov.Stats()
		if statsAfter.Batches == statsBefore.Batches {
			b.Error("no write batch landed during the read-under-write phase")
		}
		report.WriteApply = &deltaWriteEntry{
			P50NS:    durPct(applyLats, 50),
			P99NS:    durPct(applyLats, 99),
			Batches:  statsAfter.Batches - statsBefore.Batches,
			Ops:      statsAfter.Ops - statsBefore.Ops,
			Rejected: statsAfter.Rejected - statsBefore.Rejected,
		}
	})

	b.Run("incremental-recluster", func(b *testing.B) {
		// Cost to have fresh labels after one point moves — the labelling
		// maintenance (mean over the run, from the overlay's own meter) plus
		// reading them back — versus running DBSCAN from scratch on the same
		// merged view.
		runtime.GC()
		mBefore := ov.Stats().LiveMaintainNS
		applyNS, labelNS := minIter2(b, func() {
			p := probes[0]
			if _, err := ov.Apply(ctx, []netclus.LiveOp{netclus.LiveMoveSame(p, 0.5)}); err != nil {
				b.Fatal(err)
			}
		}, func() {
			if _, _, _, ok := ov.Current().LiveDBSCAN(clusterEps, minPts); !ok {
				b.Fatal("live labelling unavailable")
			}
		})
		maintainNS := float64(ov.Stats().LiveMaintainNS-mBefore) / float64(b.N)
		cur := ov.Current()
		full := minIter(b, func() {
			if _, err := netclus.DBSCANCtx(ctx, cur.Graph, netclus.DBSCANOptions{Eps: clusterEps, MinPts: minPts}); err != nil {
				b.Fatal(err)
			}
		})
		inc := maintainNS + labelNS
		report.Incremental = &deltaIncrementalEntry{
			ApplyNS: applyNS, MaintainNS: maintainNS, LabelNS: labelNS,
			IncrementalNS:   inc,
			FullRecomputeNS: full,
		}
		if inc > 0 {
			report.Incremental.Speedup = full / inc
		}
	})

	b.Run("compaction", func(b *testing.B) {
		runtime.GC()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// Leave a tail for compaction to fold in, then force a compile.
			if _, err := ov.Apply(ctx, []netclus.LiveOp{netclus.LiveMoveSame(probes[1], 0.75)}); err != nil {
				b.Fatal(err)
			}
			if err := ov.CompactNow(); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		st := ov.Stats()
		if st.PendingOps != 0 {
			b.Fatalf("compaction left %d pending ops", st.PendingOps)
		}
		report.Compaction = &deltaCompactionEntry{
			Count:         st.Compactions,
			LastPauseMS:   st.LastPauseMS,
			MaxPauseMS:    st.MaxPauseMS,
			LastCompileMS: st.LastCompileMS,
		}
	})
}

// minIter2 times two dependent steps per iteration (the second consumes the
// first's effect) and returns each step's fastest observation.
func minIter2(b *testing.B, first, second func()) (ns1, ns2 float64) {
	min1, min2 := -1.0, -1.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		first()
		d1 := float64(time.Since(t0).Nanoseconds())
		t1 := time.Now()
		second()
		d2 := float64(time.Since(t1).Nanoseconds())
		if min1 < 0 || d1 < min1 {
			min1 = d1
		}
		if min2 < 0 || d2 < min2 {
			min2 = d2
		}
	}
	b.StopTimer()
	return min1, min2
}
