package netclus

import (
	"math/rand"

	"netclus/internal/datagen"
	"netclus/internal/evalx"
)

// Workload generation (see internal/datagen).
type (
	// ClusterConfig parameterizes the paper's §5 synthetic cluster
	// generator: K traversal-grown clusters with initial separation SInit
	// and magnification F, plus uniform outliers.
	ClusterConfig = datagen.ClusterConfig
	// RoadSpec describes one of the paper's four road networks.
	RoadSpec = datagen.RoadSpec
)

// OutlierTag marks generated outlier points in the network tags.
const OutlierTag = datagen.OutlierTag

// Roads lists the paper's four evaluation networks (NA, SF, TG, OL).
var Roads = datagen.Roads

// MaxRoadScale caps RoadNetwork / RoadDataset scaling: up to 16x the
// paper's dataset sizes for stress and sharding runs.
const MaxRoadScale = datagen.MaxScale

// DefaultClusterConfig returns the paper's standard workload shape.
func DefaultClusterConfig(n, k int, sInit float64) ClusterConfig {
	return datagen.DefaultClusterConfig(n, k, sInit)
}

// GeneratePoints places cfg.NumPoints objects on base per the paper's
// generator; ground-truth cluster labels travel in the point tags.
func GeneratePoints(base *Network, cfg ClusterConfig, rng *rand.Rand) (*Network, error) {
	return datagen.GeneratePoints(base, cfg, rng)
}

// GenerateUniform places n uniformly distributed points on base.
func GenerateUniform(base *Network, n int, rng *rand.Rand) (*Network, error) {
	return datagen.GenerateUniform(base, n, rng)
}

// GridNetwork builds a connected road-like network: a jittered lattice with
// a random spanning tree plus extraEdges shortcuts, Euclidean edge weights.
func GridNetwork(rows, cols int, spacing, jitter float64, extraEdges int, rng *rand.Rand) (*Network, error) {
	return datagen.GridNetwork(rows, cols, spacing, jitter, extraEdges, rng)
}

// RoadNetwork builds the synthetic stand-in for one of the paper's four road
// networks (NA, SF, TG, OL) at the given scale in (0, 1].
func RoadNetwork(name string, scale float64) (*Network, error) {
	return datagen.RoadNetwork(name, scale)
}

// RoadDataset builds a road stand-in and the paper's Tables 1-2 workload on
// it (k clusters, ~3|V| points, 1% outliers).
func RoadDataset(name string, scale float64, k int) (*Network, ClusterConfig, error) {
	return datagen.RoadDataset(name, scale, k)
}

// Quality indices (see internal/evalx).

// ARI is the Adjusted Rand Index between two labelings (1 = identical
// partitions, ~0 = independent).
func ARI(truth, pred []int32) (float64, error) { return evalx.ARI(truth, pred) }

// NMI is normalized mutual information in [0, 1].
func NMI(truth, pred []int32) (float64, error) { return evalx.NMI(truth, pred) }

// Purity is the majority-label accuracy of the predicted clusters.
func Purity(truth, pred []int32) (float64, error) { return evalx.Purity(truth, pred) }

// PairwiseF1 returns precision, recall and F1 over co-clustered pairs.
func PairwiseF1(truth, pred []int32) (precision, recall, f1 float64, err error) {
	return evalx.PairwiseF1(truth, pred)
}

// NoiseAsSingletons maps each noise-labelled point to a fresh unique label
// so quality indices treat outliers as singleton clusters.
func NoiseAsSingletons(labels []int32, noise int32) []int32 {
	return evalx.NoiseAsSingletons(labels, noise)
}
