package netclus

import (
	"encoding/json"
	"reflect"
	"sort"
	"testing"
)

// The stats snapshots travel over the wire (netclusd /metrics labels and the
// /v1/datasets JSON), so their lowercase field names are a compatibility
// contract. These tests pin the exact key sets and check that marshalling
// round-trips every counter, so renaming a Go field without keeping its tag
// fails loudly instead of silently changing the payload.

func jsonKeys(t *testing.T, v any) []string {
	t.Helper()
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal %T: %v", v, err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("unmarshal %T: %v", v, err)
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func roundTrip[T any](t *testing.T, in T) {
	t.Helper()
	raw, err := json.Marshal(in)
	if err != nil {
		t.Fatalf("marshal %T: %v", in, err)
	}
	var out T
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("unmarshal %T: %v", in, err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("%T round trip: got %+v, want %+v", in, out, in)
	}
}

func TestStatsJSONRoundTrip(t *testing.T) {
	buf := BufferStats{LogicalReads: 1, PhysicalReads: 2, PageWrites: 3, Evictions: 4}
	roundTrip(t, buf)
	wantBuf := []string{"evictions", "logical_reads", "page_writes", "physical_reads"}
	if got := jsonKeys(t, buf); !reflect.DeepEqual(got, wantBuf) {
		t.Errorf("BufferStats keys = %v, want %v", got, wantBuf)
	}

	cache := CacheStats{
		AdjHits: 1, AdjMisses: 2, AdjEvictions: 3,
		GroupHits: 4, GroupMisses: 5, GroupEvictions: 6,
		LeafHits: 7, LeafMisses: 8,
	}
	roundTrip(t, cache)
	wantCache := []string{
		"adj_evictions", "adj_hits", "adj_misses",
		"group_evictions", "group_hits", "group_misses",
		"leaf_hits", "leaf_misses",
	}
	if got := jsonKeys(t, cache); !reflect.DeepEqual(got, wantCache) {
		t.Errorf("CacheStats keys = %v, want %v", got, wantCache)
	}

	prune := PruneStats{
		Candidates: 1, FilterAccepted: 2, FilterRejected: 3, FilterUncertain: 4,
		ZeroTraversalQueries: 5, EarlyStops: 6, PrunedPushes: 7, Refinements: 8,
	}
	roundTrip(t, prune)
	wantPrune := []string{
		"candidates", "early_stops", "filter_accepted", "filter_rejected",
		"filter_uncertain", "pruned_pushes", "refinements", "zero_traversal_queries",
	}
	if got := jsonKeys(t, prune); !reflect.DeepEqual(got, wantPrune) {
		t.Errorf("PruneStats keys = %v, want %v", got, wantPrune)
	}

	// Every exported counter field must carry an explicit lowercase tag, so
	// adding a field without one is caught here rather than on the wire.
	for _, v := range []any{buf, cache, prune, StoreStats{}} {
		rt := reflect.TypeOf(v)
		for i := 0; i < rt.NumField(); i++ {
			f := rt.Field(i)
			tag := f.Tag.Get("json")
			if tag == "" || tag == "-" {
				t.Errorf("%s.%s has no json tag", rt.Name(), f.Name)
			}
		}
	}

	combined := StoreStats{
		Buffer: buf,
		Cache:  cache,
		Shards: []BufferStats{buf, {LogicalReads: 9}},
	}
	roundTrip(t, combined)
	wantCombined := []string{"buffer", "cache", "shards"}
	if got := jsonKeys(t, combined); !reflect.DeepEqual(got, wantCombined) {
		t.Errorf("StoreStats keys = %v, want %v", got, wantCombined)
	}
}

func TestStoreStatsSub(t *testing.T) {
	a := StoreStats{
		Buffer: BufferStats{LogicalReads: 10, PhysicalReads: 4},
		Cache:  CacheStats{AdjHits: 8, GroupMisses: 3},
		Shards: []BufferStats{{LogicalReads: 6}, {LogicalReads: 4}},
	}
	b := StoreStats{
		Buffer: BufferStats{LogicalReads: 7, PhysicalReads: 1},
		Cache:  CacheStats{AdjHits: 5, GroupMisses: 1},
		Shards: []BufferStats{{LogicalReads: 5}, {LogicalReads: 2}},
	}
	d := a.Sub(b)
	if d.Buffer.LogicalReads != 3 || d.Buffer.PhysicalReads != 3 {
		t.Errorf("buffer delta = %+v", d.Buffer)
	}
	if d.Cache.AdjHits != 3 || d.Cache.GroupMisses != 2 {
		t.Errorf("cache delta = %+v", d.Cache)
	}
	if len(d.Shards) != 2 || d.Shards[0].LogicalReads != 1 || d.Shards[1].LogicalReads != 2 {
		t.Errorf("shard delta = %+v", d.Shards)
	}
	if mismatch := a.Sub(StoreStats{}); mismatch.Shards != nil {
		t.Errorf("mismatched shard counts should drop Shards, got %+v", mismatch.Shards)
	}

	pa := PruneStats{Candidates: 9, EarlyStops: 4}
	pb := PruneStats{Candidates: 5, EarlyStops: 1}
	if d := pa.Sub(pb); d.Candidates != 4 || d.EarlyStops != 3 {
		t.Errorf("PruneStats.Sub = %+v", d)
	}
}
