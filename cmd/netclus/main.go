// Command netclus is the command-line front end of the library: it
// generates spatial networks and point workloads, builds disk stores, runs
// the three clustering algorithms, and renders SVG maps.
//
// Subcommands:
//
//	netclus gen-network -name SF -scale 0.05 -out data/sf
//	netclus gen-points  -in data/sf -n 20000 -k 10 -out data/sf
//	netclus store       -in data/sf -dir data/sf.store
//	netclus cluster     -in data/sf -algo eps-link -eps 0.5 -out labels.tsv
//	netclus cluster     -store data/sf.store -algo dbscan -eps 0.5 -minpts 3
//	netclus viz         -in data/sf -labels labels.tsv -out map.svg
//	netclus stats       -in data/sf
//
// Networks travel as three text files <prefix>.node, <prefix>.edge and
// <prefix>.pnt (see package netclus for the formats). Run any subcommand
// with -h for its flags.
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"netclus"
)

// pruner bundles the lower-bound pruning wiring shared by the cluster and
// knn subcommands: the -landmarks flag, the bounds preprocessing (landmark
// tables plus the Euclidean filter when the network carries a usable
// embedding; disk stores and non-Euclidean weights fall back to landmarks
// only), and the post-run prune-stats report. -landmarks 0 disables pruning.
type pruner struct {
	landmarks *int
	bounds    *netclus.Bounds
}

// newPruner registers the -landmarks flag on fs; what names the queries it
// accelerates in the flag help.
func newPruner(fs *flag.FlagSet, what string) *pruner {
	return &pruner{landmarks: fs.Int("landmarks", netclus.DefaultLandmarks,
		"lower-bound pruning landmarks for "+what+" (0 disables)")}
}

// build preprocesses the pruning tables for g per the parsed flag, printing
// the build cost. It returns nil (no error) when pruning is disabled.
func (p *pruner) build(g netclus.Graph) (*netclus.Bounds, error) {
	if *p.landmarks <= 0 {
		return nil, nil
	}
	opts := netclus.BoundsOptions{Landmarks: *p.landmarks, EuclideanLB: true}
	b, err := netclus.BuildBounds(g, opts)
	if errors.Is(err, netclus.ErrBoundsNoCoords) || errors.Is(err, netclus.ErrBoundsNotEuclidean) {
		opts.EuclideanLB = false
		b, err = netclus.BuildBounds(g, opts)
	}
	if err != nil {
		return nil, err
	}
	st := b.Stats()
	fmt.Printf("bounds: %d landmarks (euclidean %v) built in %s, %d KB tables\n",
		st.Landmarks, st.Euclidean, st.BuildTime.Round(time.Millisecond), st.TableBytes/1024)
	p.bounds = b
	return b, nil
}

// report prints the filter work of a pruned run; a no-op when pruning was
// disabled or build was never called.
func (p *pruner) report(ps netclus.PruneStats) {
	if p.bounds == nil {
		return
	}
	fmt.Printf("pruning: %d candidates (%d accepted / %d rejected by bounds, %d refined), %d zero-traversal queries, %d early stops, %d pruned pushes\n",
		ps.Candidates, ps.FilterAccepted, ps.FilterRejected, ps.FilterUncertain,
		ps.ZeroTraversalQueries, ps.EarlyStops, ps.PrunedPushes)
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "gen-network":
		err = genNetwork(args)
	case "gen-points":
		err = genPoints(args)
	case "store":
		err = buildStore(args)
	case "cluster":
		err = cluster(args)
	case "viz":
		err = vizCmd(args)
	case "knn":
		err = knn(args)
	case "stats":
		err = stats(args)
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "netclus: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "netclus %s: %v\n", cmd, err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `netclus <command> [flags]

commands:
  gen-network   generate a road-network stand-in (NA, SF, TG, OL) or grid
  gen-points    generate clustered points on a network
  store         build the disk store (flat files + B+-trees) for a network
  cluster       run k-medoids, eps-link, dbscan, single-link or optics
  viz           render the network and a labelling to SVG
  knn           k nearest neighbours of a point by network distance
  stats         print network statistics`)
}

// loadNetwork reads <prefix>.node/.edge and optionally .pnt.
func loadNetwork(prefix string, withPoints bool) (*netclus.Network, error) {
	return netclus.LoadNetworkFiles(prefix, withPoints)
}

func saveNetwork(n *netclus.Network, prefix string, withPoints bool) error {
	nodes, err := os.Create(prefix + ".node")
	if err != nil {
		return err
	}
	defer nodes.Close()
	edges, err := os.Create(prefix + ".edge")
	if err != nil {
		return err
	}
	defer edges.Close()
	var pts *os.File
	if withPoints {
		if pts, err = os.Create(prefix + ".pnt"); err != nil {
			return err
		}
		defer pts.Close()
	}
	if pts != nil {
		return netclus.WriteNetwork(n, nodes, edges, pts)
	}
	return netclus.WriteNetwork(n, nodes, edges, nil)
}

func genNetwork(args []string) error {
	fs := flag.NewFlagSet("gen-network", flag.ExitOnError)
	name := fs.String("name", "OL", "road network stand-in: NA, SF, TG, OL, or 'grid'")
	scale := fs.Float64("scale", 0.1, "scale relative to the paper's network size (up to 16)")
	rows := fs.Int("rows", 50, "grid rows (with -name grid)")
	cols := fs.Int("cols", 50, "grid cols (with -name grid)")
	extra := fs.Int("extra", 500, "extra non-tree edges (with -name grid)")
	seed := fs.Int64("seed", 1, "random seed (grid only; road stand-ins are deterministic)")
	out := fs.String("out", "", "output file prefix (required)")
	fs.Parse(args)
	if *out == "" {
		return fmt.Errorf("-out is required")
	}
	var (
		n   *netclus.Network
		err error
	)
	if strings.EqualFold(*name, "grid") {
		n, err = netclus.GridNetwork(*rows, *cols, 1.0, 0.4, *extra, rand.New(rand.NewSource(*seed)))
	} else {
		n, err = netclus.RoadNetwork(*name, *scale)
	}
	if err != nil {
		return err
	}
	if err := saveNetwork(n, *out, false); err != nil {
		return err
	}
	fmt.Printf("wrote %s.node and %s.edge: %d nodes, %d edges\n", *out, *out, n.NumNodes(), n.NumEdges())
	return nil
}

func genPoints(args []string) error {
	fs := flag.NewFlagSet("gen-points", flag.ExitOnError)
	in := fs.String("in", "", "input network prefix (required)")
	out := fs.String("out", "", "output prefix for the .pnt file (default: same as -in)")
	n := fs.Int("n", 10000, "total number of points")
	k := fs.Int("k", 10, "number of clusters")
	sinit := fs.Float64("sinit", 0, "initial in-cluster separation (0 = automatic)")
	f := fs.Float64("f", 5, "magnification factor F")
	outliers := fs.Float64("outliers", 0.01, "outlier fraction")
	seed := fs.Int64("seed", 1, "random seed")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("-in is required")
	}
	if *out == "" {
		*out = *in
	}
	base, err := loadNetwork(*in, false)
	if err != nil {
		return err
	}
	cfg := netclus.DefaultClusterConfig(*n, *k, *sinit)
	cfg.F = *f
	cfg.OutlierFrac = *outliers
	if *sinit == 0 {
		cfg.SInit = autoSInit(base, *n, *k)
	}
	g, err := netclus.GeneratePoints(base, cfg, rand.New(rand.NewSource(*seed)))
	if err != nil {
		return err
	}
	pts, err := os.Create(*out + ".pnt")
	if err != nil {
		return err
	}
	defer pts.Close()
	if err := netclus.WriteNetwork(g, nil, nil, pts); err != nil {
		return err
	}
	fmt.Printf("wrote %s.pnt: %d points in %d clusters (s_init %.4g, suggested eps %.4g, delta %.4g)\n",
		*out, g.NumPoints(), *k, cfg.SInit, cfg.Eps(), cfg.Delta())
	return nil
}

// autoSInit mirrors the experiments' heuristic: clusters cover ~1% of the
// total edge length each.
func autoSInit(base *netclus.Network, n, k int) float64 {
	total := 0.0
	for u := 0; u < base.NumNodes(); u++ {
		adj, err := base.Neighbors(netclus.NodeID(u))
		if err != nil {
			continue
		}
		for _, nb := range adj {
			if netclus.NodeID(u) < nb.Node {
				total += nb.Weight
			}
		}
	}
	s := total * 0.01 / (float64(n) / float64(k) * 3)
	if s <= 0 {
		s = 0.1
	}
	return s
}

func buildStore(args []string) error {
	fs := flag.NewFlagSet("store", flag.ExitOnError)
	in := fs.String("in", "", "input network prefix (required)")
	dir := fs.String("dir", "", "store directory (required; created if missing)")
	pageSize := fs.Int("page", 4096, "page size in bytes")
	noReorder := fs.Bool("no-reorder", false, "disable BFS (connectivity) node packing")
	fs.Parse(args)
	if *in == "" || *dir == "" {
		return fmt.Errorf("-in and -dir are required")
	}
	g, err := loadNetwork(*in, true)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		return err
	}
	opts := netclus.StoreOptions{PageSize: *pageSize, NoReorder: *noReorder}
	if err := netclus.BuildStore(*dir, g, opts); err != nil {
		return err
	}
	fmt.Printf("built store %s: %d nodes, %d edges, %d points\n", *dir, g.NumNodes(), g.NumEdges(), g.NumPoints())
	return nil
}

func cluster(args []string) error {
	fs := flag.NewFlagSet("cluster", flag.ExitOnError)
	in := fs.String("in", "", "input network prefix (text files)")
	storeDir := fs.String("store", "", "input store directory (alternative to -in)")
	bufKB := fs.Int("buffer", 1024, "buffer pool size in KB (with -store)")
	algo := fs.String("algo", "eps-link", "algorithm: eps-link, dbscan, k-medoids, single-link, optics")
	eps := fs.Float64("eps", 0, "eps for eps-link/dbscan/optics, cut distance for single-link")
	cutEps := fs.Float64("cut", 0, "optics extraction radius eps' (default: same as -eps)")
	minPts := fs.Int("minpts", 3, "MinPts for dbscan/optics")
	minSup := fs.Int("minsup", 1, "min cluster size; smaller clusters become outliers")
	k := fs.Int("k", 10, "clusters for k-medoids / stop count for single-link with -eps 0")
	delta := fs.Float64("delta", 0, "single-link scalability threshold δ")
	restarts := fs.Int("restarts", 1, "k-medoids restarts")
	seed := fs.Int64("seed", 1, "random seed")
	pr := newPruner(fs, "dbscan/k-medoids")
	out := fs.String("out", "", "write 'pointID<TAB>label' lines to this file")
	fs.Parse(args)

	var (
		g   netclus.Graph
		err error
	)
	switch {
	case *storeDir != "":
		st, err := netclus.OpenStore(*storeDir, netclus.StoreOptions{BufferBytes: *bufKB * 1024})
		if err != nil {
			return err
		}
		defer func() {
			stats := st.Stats()
			fmt.Printf("buffer: %d logical reads, %d page faults (%.1f%% hit)\n",
				stats.LogicalReads, stats.PhysicalReads, 100*stats.HitRatio())
			st.Close()
		}()
		g = st
	case *in != "":
		if g, err = loadNetwork(*in, true); err != nil {
			return err
		}
	default:
		return fmt.Errorf("one of -in or -store is required")
	}

	var labels []int32
	start := time.Now()
	switch *algo {
	case "eps-link":
		if *eps <= 0 {
			return fmt.Errorf("eps-link needs -eps > 0")
		}
		res, err := netclus.EpsLink(g, netclus.EpsLinkOptions{Eps: *eps, MinSup: *minSup})
		if err != nil {
			return err
		}
		labels = res.Labels
		fmt.Printf("eps-link: %d clusters (%d before min_sup) in %s\n",
			res.NumClusters, res.ClustersFound, time.Since(start).Round(time.Millisecond))
	case "dbscan":
		if *eps <= 0 {
			return fmt.Errorf("dbscan needs -eps > 0")
		}
		bounds, err := pr.build(g)
		if err != nil {
			return err
		}
		start = time.Now() // clustering time, preprocessing reported separately
		opts := netclus.DBSCANOptions{Eps: *eps, MinPts: *minPts}
		if bounds != nil {
			opts.Prune = bounds
		}
		res, err := netclus.DBSCAN(g, opts)
		if err != nil {
			return err
		}
		labels = res.Labels
		fmt.Printf("dbscan: %d clusters, %d core points, %d range queries in %s\n",
			res.NumClusters, res.CorePoints, res.Stats.RangeQueries, time.Since(start).Round(time.Millisecond))
		pr.report(res.Stats.Prune)
	case "k-medoids":
		bounds, err := pr.build(g)
		if err != nil {
			return err
		}
		start = time.Now()
		opts := netclus.KMedoidsOptions{
			K: *k, Restarts: *restarts, Rand: rand.New(rand.NewSource(*seed)),
		}
		if bounds != nil {
			opts.Prune = bounds
		}
		res, err := netclus.KMedoids(g, opts)
		if err != nil {
			return err
		}
		labels = res.Labels
		fmt.Printf("k-medoids: k=%d, R=%.4g, %d iterations (%d swaps tried) in %s\n",
			*k, res.R, res.Iterations, res.AttemptedSwaps, time.Since(start).Round(time.Millisecond))
		pr.report(res.Stats.Prune)
	case "optics":
		if *eps <= 0 {
			return fmt.Errorf("optics needs -eps > 0 (the maximum radius)")
		}
		res, err := netclus.OPTICS(g, netclus.OPTICSOptions{Eps: *eps, MinPts: *minPts})
		if err != nil {
			return err
		}
		cut := *cutEps
		if cut <= 0 {
			cut = *eps
		}
		labels = res.ExtractDBSCAN(cut)
		netclus.SuppressSmallClusters(labels, *minSup)
		fmt.Printf("optics: ordered %d points in %s; extraction at eps'=%g gives %d clusters\n",
			len(res.Order), time.Since(start).Round(time.Millisecond), cut, netclus.CountClusters(labels))
	case "single-link":
		res, err := netclus.SingleLink(g, netclus.SingleLinkOptions{Delta: *delta})
		if err != nil {
			return err
		}
		if *eps > 0 {
			labels = res.Dendrogram.LabelsAtDistance(*eps)
		} else {
			labels = res.Dendrogram.LabelsAtCount(*k)
		}
		netclus.SuppressSmallClusters(labels, *minSup)
		fmt.Printf("single-link: %d merges, cut to %d clusters in %s\n",
			len(res.Dendrogram.Merges), netclus.CountClusters(labels), time.Since(start).Round(time.Millisecond))
		levels := res.Dendrogram.InterestingLevels(8, 3)
		sort.Slice(levels, func(i, j int) bool { return levels[i].Ratio > levels[j].Ratio })
		if len(levels) > 5 {
			levels = levels[:5]
		}
		sort.Slice(levels, func(i, j int) bool { return levels[i].Index < levels[j].Index })
		for _, l := range levels {
			fmt.Printf("  interesting level: merge %d at distance %.4g (jump x%.1f)\n", l.Index, l.Dist, l.Ratio)
		}
	default:
		return fmt.Errorf("unknown algorithm %q", *algo)
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w := bufio.NewWriter(f)
		for p, l := range labels {
			fmt.Fprintf(w, "%d\t%d\n", p, l)
		}
		if err := w.Flush(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *out)
	}
	return nil
}

func vizCmd(args []string) error {
	fs := flag.NewFlagSet("viz", flag.ExitOnError)
	in := fs.String("in", "", "input network prefix (required)")
	labelsPath := fs.String("labels", "", "labels TSV from 'netclus cluster -out' (optional)")
	out := fs.String("out", "map.svg", "output SVG path")
	width := fs.Int("width", 800, "canvas width")
	height := fs.Int("height", 800, "canvas height")
	minSize := fs.Int("min-size", 1, "hide colors of clusters smaller than this")
	title := fs.String("title", "", "caption")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("-in is required")
	}
	g, err := loadNetwork(*in, true)
	if err != nil {
		return err
	}
	var labels []int32
	if *labelsPath != "" {
		if labels, err = readLabels(*labelsPath, g.NumPoints()); err != nil {
			return err
		}
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	err = netclus.RenderSVG(f, g, labels, netclus.RenderOptions{
		Width: *width, Height: *height, MinClusterSize: *minSize, Title: *title,
	})
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", *out)
	return nil
}

func readLabels(path string, n int) ([]int32, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	labels := make([]int32, n)
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		fields := strings.Fields(sc.Text())
		if len(fields) != 2 {
			return nil, fmt.Errorf("%s:%d: want 'point label'", path, line)
		}
		p, err1 := strconv.Atoi(fields[0])
		l, err2 := strconv.ParseInt(fields[1], 10, 32)
		if err1 != nil || err2 != nil || p < 0 || p >= n {
			return nil, fmt.Errorf("%s:%d: bad entry", path, line)
		}
		labels[p] = int32(l)
	}
	return labels, sc.Err()
}

func knn(args []string) error {
	fs := flag.NewFlagSet("knn", flag.ExitOnError)
	in := fs.String("in", "", "input network prefix (required)")
	p := fs.Int("p", 0, "query point ID")
	k := fs.Int("k", 5, "number of neighbours")
	pr := newPruner(fs, "the kNN query")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("-in is required")
	}
	g, err := loadNetwork(*in, true)
	if err != nil {
		return err
	}
	var (
		nn    []netclus.PointDist
		prune netclus.PruneStats
	)
	if bounds, err := pr.build(g); err != nil {
		return err
	} else if bounds != nil {
		nn, err = netclus.KNearestNeighborsPruned(g, bounds, netclus.PointID(*p), *k, &prune)
		if err != nil {
			return err
		}
		pr.report(prune)
	} else if nn, err = netclus.KNearestNeighbors(g, netclus.PointID(*p), *k); err != nil {
		return err
	}
	pi, err := g.PointInfo(netclus.PointID(*p))
	if err != nil {
		return err
	}
	fmt.Printf("query point %d on edge (%d,%d) at %.4g:\n", *p, pi.N1, pi.N2, pi.Pos)
	for i, q := range nn {
		qi, err := g.PointInfo(q.Point)
		if err != nil {
			return err
		}
		fmt.Printf("  #%d point %d at network distance %.4g (edge (%d,%d) pos %.4g)\n",
			i+1, q.Point, q.Dist, qi.N1, qi.N2, qi.Pos)
	}
	return nil
}

func stats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	in := fs.String("in", "", "input network prefix (required)")
	points := fs.Bool("points", true, "include the .pnt file")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("-in is required")
	}
	g, err := loadNetwork(*in, *points)
	if err != nil {
		return err
	}
	totalW := 0.0
	maxDeg := 0
	for u := 0; u < g.NumNodes(); u++ {
		adj, err := g.Neighbors(netclus.NodeID(u))
		if err != nil {
			return err
		}
		if len(adj) > maxDeg {
			maxDeg = len(adj)
		}
		for _, nb := range adj {
			if netclus.NodeID(u) < nb.Node {
				totalW += nb.Weight
			}
		}
	}
	fmt.Printf("nodes:        %d\n", g.NumNodes())
	fmt.Printf("edges:        %d (E/V %.3f, max degree %d)\n",
		g.NumEdges(), float64(g.NumEdges())/float64(g.NumNodes()), maxDeg)
	fmt.Printf("total length: %.4g\n", totalW)
	fmt.Printf("points:       %d in %d groups\n", g.NumPoints(), g.NumGroups())
	return nil
}
