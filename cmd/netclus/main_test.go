package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// withDir runs a subcommand pipeline inside a temp dir by prefixing file
// arguments; the subcommand functions are tested directly (no subprocess).
func tmp(t *testing.T, name string) string {
	t.Helper()
	return filepath.Join(t.TempDir(), name)
}

func TestPipelineGenerateClusterViz(t *testing.T) {
	dir := t.TempDir()
	prefix := filepath.Join(dir, "city")

	if err := genNetwork([]string{"-name", "OL", "-scale", "0.05", "-out", prefix}); err != nil {
		t.Fatal(err)
	}
	for _, ext := range []string{".node", ".edge"} {
		if _, err := os.Stat(prefix + ext); err != nil {
			t.Fatalf("missing %s: %v", ext, err)
		}
	}
	if err := genPoints([]string{"-in", prefix, "-n", "800", "-k", "4"}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(prefix + ".pnt"); err != nil {
		t.Fatal(err)
	}
	if err := stats([]string{"-in", prefix}); err != nil {
		t.Fatal(err)
	}

	labels := filepath.Join(dir, "labels.tsv")
	if err := cluster([]string{"-in", prefix, "-algo", "eps-link", "-eps", "0.2", "-minsup", "3", "-out", labels}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(labels)
	if err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(string(data), "\n"); lines != 800 {
		t.Fatalf("labels file has %d lines, want 800", lines)
	}

	svg := filepath.Join(dir, "map.svg")
	if err := vizCmd([]string{"-in", prefix, "-labels", labels, "-out", svg}); err != nil {
		t.Fatal(err)
	}
	out, err := os.ReadFile(svg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), "</svg>") {
		t.Fatal("svg output malformed")
	}
}

func TestPipelineStoreAndAllAlgorithms(t *testing.T) {
	dir := t.TempDir()
	prefix := filepath.Join(dir, "city")
	if err := genNetwork([]string{"-name", "grid", "-rows", "15", "-cols", "15", "-extra", "40", "-out", prefix}); err != nil {
		t.Fatal(err)
	}
	if err := genPoints([]string{"-in", prefix, "-n", "400", "-k", "3"}); err != nil {
		t.Fatal(err)
	}
	storeDir := filepath.Join(dir, "store")
	if err := buildStore([]string{"-in", prefix, "-dir", storeDir}); err != nil {
		t.Fatal(err)
	}
	for _, args := range [][]string{
		{"-store", storeDir, "-algo", "eps-link", "-eps", "0.5"},
		{"-store", storeDir, "-algo", "dbscan", "-eps", "0.5", "-minpts", "3"},
		{"-store", storeDir, "-algo", "k-medoids", "-k", "3"},
		{"-store", storeDir, "-algo", "single-link", "-k", "3"},
		{"-in", prefix, "-algo", "single-link", "-eps", "0.5", "-delta", "0.2"},
		{"-in", prefix, "-algo", "optics", "-eps", "1.0", "-cut", "0.5"},
	} {
		if err := cluster(args); err != nil {
			t.Fatalf("cluster %v: %v", args, err)
		}
	}
}

func TestClusterValidation(t *testing.T) {
	dir := t.TempDir()
	prefix := filepath.Join(dir, "x")
	if err := genNetwork([]string{"-name", "grid", "-rows", "5", "-cols", "5", "-out", prefix}); err != nil {
		t.Fatal(err)
	}
	if err := genPoints([]string{"-in", prefix, "-n", "20", "-k", "2"}); err != nil {
		t.Fatal(err)
	}
	cases := [][]string{
		{},                                   // neither -in nor -store
		{"-in", prefix, "-algo", "eps-link"}, // missing eps
		{"-in", prefix, "-algo", "dbscan"},   // missing eps
		{"-in", prefix, "-algo", "nonsense", "-eps", "1"},
		{"-in", filepath.Join(dir, "missing"), "-algo", "eps-link", "-eps", "1"},
	}
	for _, args := range cases {
		if err := cluster(args); err == nil {
			t.Fatalf("cluster %v: want error", args)
		}
	}
	if err := genNetwork([]string{"-name", "XX", "-out", tmp(t, "y")}); err == nil {
		t.Fatal("want error for unknown road name")
	}
	if err := genNetwork([]string{}); err == nil {
		t.Fatal("want error for missing -out")
	}
	if err := genPoints([]string{}); err == nil {
		t.Fatal("want error for missing -in")
	}
	if err := buildStore([]string{}); err == nil {
		t.Fatal("want error for missing flags")
	}
	if err := vizCmd([]string{}); err == nil {
		t.Fatal("want error for missing -in")
	}
	if err := stats([]string{}); err == nil {
		t.Fatal("want error for missing -in")
	}
}

func TestKNNCommand(t *testing.T) {
	dir := t.TempDir()
	prefix := filepath.Join(dir, "x")
	if err := genNetwork([]string{"-name", "grid", "-rows", "8", "-cols", "8", "-out", prefix}); err != nil {
		t.Fatal(err)
	}
	if err := genPoints([]string{"-in", prefix, "-n", "60", "-k", "2"}); err != nil {
		t.Fatal(err)
	}
	if err := knn([]string{"-in", prefix, "-p", "3", "-k", "4"}); err != nil {
		t.Fatal(err)
	}
	if err := knn([]string{}); err == nil {
		t.Fatal("want error for missing -in")
	}
	if err := knn([]string{"-in", prefix, "-p", "9999"}); err == nil {
		t.Fatal("want error for bad point")
	}
}

func TestReadLabels(t *testing.T) {
	path := tmp(t, "l.tsv")
	if err := os.WriteFile(path, []byte("0\t2\n1\t-1\n2\t0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	labels, err := readLabels(path, 3)
	if err != nil {
		t.Fatal(err)
	}
	if labels[0] != 2 || labels[1] != -1 || labels[2] != 0 {
		t.Fatalf("labels %v", labels)
	}
	// Malformed inputs.
	for _, bad := range []string{"0\n", "x\t1\n", "0\ty\n", "99\t0\n"} {
		if err := os.WriteFile(path, []byte(bad), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := readLabels(path, 3); err == nil {
			t.Fatalf("readLabels accepted %q", bad)
		}
	}
	if _, err := readLabels(tmp(t, "missing.tsv"), 1); err == nil {
		t.Fatal("want error for missing file")
	}
}
