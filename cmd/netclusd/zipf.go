package main

import (
	"encoding/json"
	"math/rand"
	"net/url"
	"sort"

	"netclus"
	"netclus/internal/server/api"
)

// splitmix64 is the SplitMix64 finalizer: a cheap bijective mixer whose
// outputs pass statistical independence tests even for sequential inputs.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// substream derives an independent per-worker RNG seed from the loadtest
// seed, the run index (0 = primary leg, 1 = the -compare leg) and the worker
// index. The naive seed+worker scheme shared streams across runs: worker w
// of the compare leg replayed worker w of the first leg request-for-request,
// so the "independent" legs measured identical traffic. Mixing run and worker
// through splitmix64 keeps runs reproducible from one seed while making every
// (run, worker) stream distinct.
func substream(seed int64, run, worker int) int64 {
	x := splitmix64(uint64(seed))
	x = splitmix64(x ^ (uint64(run)+1)*0xa0761d6478bd642f)
	x = splitmix64(x ^ (uint64(worker)+1)*0xe7037ed1a0b428db)
	return int64(x)
}

// epsLadder scales the base -eps into the radii a zipf-skewed client asks
// for; rank 0 — the most popular — is the widest, so the skewed workload
// populates wide distance vectors early and then serves the narrower ranks
// from them by ε-containment.
var epsLadder = [...]float64{1, 0.5, 0.25, 0.125}

// reqPicker draws each request's endpoint and parameters: uniformly when
// -zipf is 0, zipf-skewed over points, ε ranks and the endpoint mix when
// s > 1.
type reqPicker struct {
	rng                *rand.Rand
	cfg                *ltConfig
	mix                []mixEntry
	pointZ, epsZ, mixZ *rand.Zipf
}

func newReqPicker(rng *rand.Rand, cfg *ltConfig) *reqPicker {
	p := &reqPicker{rng: rng, cfg: cfg, mix: cfg.mix}
	if cfg.zipf > 1 {
		p.pointZ = rand.NewZipf(rng, cfg.zipf, 1, uint64(cfg.points-1))
		p.epsZ = rand.NewZipf(rng, cfg.zipf, 1, uint64(len(epsLadder)-1))
		// Endpoint skew: rank the mix by weight and zipf over the ranks, so
		// the heaviest endpoint dominates even harder than its weight says.
		p.mix = append([]mixEntry(nil), cfg.mix...)
		sort.SliceStable(p.mix, func(i, j int) bool { return p.mix[i].weight > p.mix[j].weight })
		p.mixZ = rand.NewZipf(rng, cfg.zipf, 1, uint64(len(p.mix)-1))
	}
	return p
}

// pick returns the endpoint path segment and the request's query values,
// built from the same api DTOs the server decodes — client and server agree
// on every parameter by construction.
func (p *reqPicker) pick() (string, url.Values) {
	var ep string
	var point int
	eps := p.cfg.eps
	if p.pointZ != nil {
		ep = p.mix[p.mixZ.Uint64()].endpoint
		point = int(p.pointZ.Uint64())
		eps *= epsLadder[p.epsZ.Uint64()]
	} else {
		ep = pickEndpoint(p.mix, p.rng)
		point = p.rng.Intn(p.cfg.points)
	}
	switch ep {
	case "write":
		// Mutations POST a JSON body, not query values: the worker calls
		// pickWrite for the payload when it sees this endpoint.
		return ep, nil
	case "knn":
		return ep, api.KNNRequest{Point: netclus.PointID(point), K: p.cfg.k, Prune: true}.Values()
	case "range":
		// The skewed workload asks for distances: one wide-ε answer then
		// serves every narrower rank for that point from the cached vector.
		req := api.RangeRequest{Point: netclus.PointID(point), Eps: eps, Dists: p.pointZ != nil, Prune: true}
		return ep, req.Values()
	default: // cluster
		// Clustering ignores the point and the ladder: repeats are identical
		// requests, so on a cached server they become cache reads.
		req := api.ClusterRequest{Algo: "dbscan", Eps: p.cfg.eps, MinPts: 3, K: 8, Restarts: 1, Seed: 1}
		return ep, req.Values()
	}
}

// pickWrite builds a single-op mutation body. Target points are drawn from
// the shared live point counter — the server's post-batch count fed back by
// every acked write — so IDs stay inside the dataset's current ID space even
// as inserts grow it and deletes never shrink it below the draw range.
func (p *reqPicker) pickWrite() []byte {
	n := int64(p.cfg.points)
	if p.cfg.livePoints != nil {
		if live := p.cfg.livePoints.Load(); live > 0 {
			n = live
		}
	}
	var point int32
	if p.pointZ != nil {
		point = int32(int64(p.pointZ.Uint64()) % n)
	} else {
		point = int32(p.rng.Int63n(n))
	}
	frac := p.rng.Float64()
	var op api.MutateOp
	switch pickEndpoint(p.cfg.writeMix, p.rng) {
	case "insert":
		op = api.MutateOp{Op: "insert", Near: &point, Pos: frac}
	case "move":
		op = api.MutateOp{Op: "move", Point: &point, Pos: frac}
	default: // delete
		op = api.MutateOp{Op: "delete", Point: &point}
	}
	body, _ := json.Marshal(api.MutateRequest{Ops: []api.MutateOp{op}})
	return body
}
