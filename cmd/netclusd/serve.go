package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // profiling endpoints on the (side) default mux, behind -pprof
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"netclus"
	"netclus/internal/server"
)

// dataSpec is one -data name=path[,hot][,nocache][,shards=K][,save=DIR]
// flag. nocache exempts the dataset from the result cache — registering the
// same data twice, once plain and once nocache, gives loadtest a
// cached/uncached A/B pair in one process. shards=K serves the dataset as a
// K-way scatter-gather set; save=DIR persists the compiled form (a sharded
// set directory, or a snapshot file for hot datasets) and warm-starts from
// it on later boots with zero store reads. path may also point directly at a
// saved snapshot file or sharded-set directory.
// live serves the dataset behind a mutable delta overlay accepting
// POST /v1/datasets/{name}/points; eps=F,minpts=K configure its incrementally
// maintained ε-Link/DBSCAN labelling and compact=N its compaction threshold.
type dataSpec struct {
	name, path string
	hot        bool
	nocache    bool
	shards     int
	save       string
	live       bool
	eps        float64
	minpts     int
	compact    int
}

// dataFlags collects repeated -data flags.
type dataFlags []dataSpec

func (d *dataFlags) String() string {
	parts := make([]string, len(*d))
	for i, s := range *d {
		parts[i] = s.name + "=" + s.path
		if s.hot {
			parts[i] += ",hot"
		}
		if s.nocache {
			parts[i] += ",nocache"
		}
		if s.shards > 0 {
			parts[i] += fmt.Sprintf(",shards=%d", s.shards)
		}
		if s.save != "" {
			parts[i] += ",save=" + s.save
		}
		if s.live {
			parts[i] += ",live"
			if s.eps > 0 {
				parts[i] += fmt.Sprintf(",eps=%g,minpts=%d", s.eps, s.minpts)
			}
			if s.compact > 0 {
				parts[i] += fmt.Sprintf(",compact=%d", s.compact)
			}
		}
	}
	return strings.Join(parts, " ")
}

func (d *dataFlags) Set(v string) error {
	name, rest, ok := strings.Cut(v, "=")
	if !ok || name == "" || rest == "" {
		return fmt.Errorf("want name=path[,hot][,nocache][,shards=K][,save=DIR], got %q", v)
	}
	spec := dataSpec{name: name}
	spec.path, rest, _ = strings.Cut(rest, ",")
	if spec.path == "" {
		return fmt.Errorf("want name=path[,hot][,nocache][,shards=K][,save=DIR], got %q", v)
	}
	for _, opt := range strings.Split(rest, ",") {
		key, val, _ := strings.Cut(opt, "=")
		switch key {
		case "":
		case "hot":
			spec.hot = true
		case "nocache":
			spec.nocache = true
		case "shards":
			k, err := strconv.Atoi(val)
			if err != nil || k < 1 {
				return fmt.Errorf("bad shards=%q in %q (want a positive integer)", val, v)
			}
			spec.shards = k
		case "save":
			if val == "" {
				return fmt.Errorf("save= needs a path in %q", v)
			}
			spec.save = val
		case "live":
			spec.live = true
		case "eps":
			e, err := strconv.ParseFloat(val, 64)
			if err != nil || e <= 0 {
				return fmt.Errorf("bad eps=%q in %q (want a positive float)", val, v)
			}
			spec.eps = e
		case "minpts":
			k, err := strconv.Atoi(val)
			if err != nil || k < 1 {
				return fmt.Errorf("bad minpts=%q in %q (want a positive integer)", val, v)
			}
			spec.minpts = k
		case "compact":
			n, err := strconv.Atoi(val)
			if err != nil || n < 1 {
				return fmt.Errorf("bad compact=%q in %q (want a positive integer)", val, v)
			}
			spec.compact = n
		default:
			return fmt.Errorf("unknown dataset option %q in %q (want hot, nocache, shards=K, save=DIR, live, eps=F, minpts=K or compact=N)", opt, v)
		}
	}
	if spec.hot && spec.shards > 0 {
		return fmt.Errorf("hot and shards=K are mutually exclusive in %q", v)
	}
	if spec.live && (spec.shards > 0 || spec.hot || spec.save != "") {
		return fmt.Errorf("live is mutually exclusive with hot, shards=K and save=DIR in %q", v)
	}
	if (spec.eps > 0 || spec.minpts > 0 || spec.compact > 0) && !spec.live {
		return fmt.Errorf("eps=, minpts= and compact= need live in %q", v)
	}
	*d = append(*d, spec)
	return nil
}

// isStoreDir reports whether path is a netclus disk store (a directory
// holding meta.bin) rather than a text-file prefix.
func isStoreDir(path string) bool {
	st, err := os.Stat(filepath.Join(path, "meta.bin"))
	return err == nil && st.Mode().IsRegular()
}

// loadGraph loads the spec's backing graph: an open store for store
// directories (the caller closes it via the returned func) or an in-memory
// network for text-file prefixes.
func loadGraph(spec dataSpec, bufKB int) (netclus.Graph, func(), error) {
	if isStoreDir(spec.path) {
		st, err := netclus.OpenStore(spec.path, netclus.StoreOptions{BufferBytes: bufKB * 1024})
		if err != nil {
			return nil, nil, err
		}
		return st, func() { st.Close() }, nil
	}
	n, err := netclus.LoadNetworkFiles(spec.path, true)
	if err != nil {
		return nil, nil, err
	}
	return n, func() {}, nil
}

// loadShardedDataset resolves the scatter-gather form of a spec. A saved set
// directory — the path itself, or an earlier boot's save= target — reopens
// with zero store reads; otherwise the backing graph is loaded, partitioned
// into spec.shards connected subnetworks, and optionally persisted for the
// next boot.
func loadShardedDataset(spec dataSpec, bufKB int, logger *log.Logger) (*server.Dataset, error) {
	for _, dir := range []string{spec.path, spec.save} {
		if dir == "" || !netclus.IsShardedSetDir(dir) {
			continue
		}
		set, err := netclus.OpenShardedSet(dir)
		if err != nil {
			return nil, err
		}
		if spec.shards > 0 && set.Stats().Shards != spec.shards {
			return nil, fmt.Errorf("saved set %s has %d shards, spec wants %d", dir, set.Stats().Shards, spec.shards)
		}
		logger.Printf("dataset %s: warm start from %s (%d shards, zero store reads)",
			spec.name, dir, set.Stats().Shards)
		return server.NewShardedDataset(spec.name, dir, set)
	}
	if spec.shards < 1 {
		return nil, fmt.Errorf("%s is not a saved sharded set and no shards=K was given", spec.path)
	}
	g, closeGraph, err := loadGraph(spec, bufKB)
	if err != nil {
		return nil, err
	}
	defer closeGraph()
	set, err := netclus.PartitionNetwork(g, spec.shards)
	if err != nil {
		return nil, err
	}
	if spec.save != "" {
		if err := netclus.SaveShardedSet(set, spec.save); err != nil {
			return nil, fmt.Errorf("saving sharded set to %s: %w", spec.save, err)
		}
		logger.Printf("dataset %s: sharded set saved to %s", spec.name, spec.save)
	}
	return server.NewShardedDataset(spec.name, spec.path, set)
}

// loadLiveDataset resolves the mutable form of a spec: the path's graph
// (snapshot file, disk store, or network files) compiles into an immutable
// CSR base, and a delta overlay over it accepts writes. The compiled form
// matters — reads between writes run the flat-array kernels, and background
// compactions recompile into the same shape.
func loadLiveDataset(spec dataSpec, bufKB int, logger *log.Logger) (*server.Dataset, error) {
	var sn *netclus.Snapshot
	if netclus.IsSnapshotFile(spec.path) {
		var err error
		if sn, err = netclus.OpenSnapshot(spec.path); err != nil {
			return nil, err
		}
	} else {
		g, closeGraph, err := loadGraph(spec, bufKB)
		if err != nil {
			return nil, err
		}
		sn, err = netclus.Compile(g)
		closeGraph()
		if err != nil {
			return nil, err
		}
	}
	opts := netclus.LiveOptions{CompactOps: spec.compact}
	if spec.eps > 0 {
		minpts := spec.minpts
		if minpts == 0 {
			minpts = 3
		}
		opts.Live = &netclus.LiveClusterOptions{Eps: spec.eps, MinPts: minpts}
		logger.Printf("dataset %s: live clustering maintained at eps=%g minpts=%d", spec.name, spec.eps, minpts)
	}
	return server.NewLiveDataset(spec.name, spec.path, sn, opts)
}

// loadDataset resolves one -data spec, picking the serving form: a live
// mutable overlay, sharded scatter-gather, a durable snapshot file (direct or
// via save=), a disk store, or in-memory network files.
func loadDataset(spec dataSpec, bufKB, landmarks int, logger *log.Logger) (*server.Dataset, error) {
	if spec.live {
		return loadLiveDataset(spec, bufKB, logger)
	}
	if spec.shards > 0 || netclus.IsShardedSetDir(spec.path) {
		return loadShardedDataset(spec, bufKB, logger)
	}
	for _, path := range []string{spec.path, spec.save} {
		if path == "" || !netclus.IsSnapshotFile(path) {
			continue
		}
		sn, err := netclus.OpenSnapshot(path)
		if err != nil {
			return nil, err
		}
		logger.Printf("dataset %s: warm start from snapshot %s (zero store reads)", spec.name, path)
		return server.NewSnapshotDataset(spec.name, path, sn, landmarks)
	}
	var (
		d   *server.Dataset
		err error
	)
	if isStoreDir(spec.path) {
		opts := netclus.StoreOptions{BufferBytes: bufKB * 1024}
		d, err = server.NewStoreDataset(spec.name, spec.path, opts, landmarks, spec.hot)
	} else {
		var n *netclus.Network
		if n, err = netclus.LoadNetworkFiles(spec.path, true); err == nil {
			d, err = server.NewNetworkDataset(spec.name, spec.path, n, landmarks, spec.hot)
		}
	}
	if err != nil {
		return nil, err
	}
	if spec.save != "" {
		sn := d.HotSnapshot()
		if sn == nil {
			d.Close()
			return nil, fmt.Errorf("save=%s needs hot (or shards=K) to have a compiled form to persist", spec.save)
		}
		if err := netclus.WriteSnapshotFile(sn, spec.save); err != nil {
			d.Close()
			return nil, fmt.Errorf("saving snapshot to %s: %w", spec.save, err)
		}
		logger.Printf("dataset %s: snapshot saved to %s", spec.name, spec.save)
	}
	return d, nil
}

// buildRegistry loads every -data spec into a registry, closing already
// loaded datasets on failure.
func buildRegistry(specs []dataSpec, bufKB, landmarks int, logger *log.Logger) (*server.Registry, error) {
	reg := server.NewRegistry()
	for _, spec := range specs {
		start := time.Now()
		d, err := loadDataset(spec, bufKB, landmarks, logger)
		if err != nil {
			reg.Close()
			return nil, fmt.Errorf("dataset %s: %w", spec.name, err)
		}
		d.DisableCache = spec.nocache
		if err := reg.Add(d); err != nil {
			d.Close()
			reg.Close()
			return nil, err
		}
		logger.Printf("dataset %s: %s %s loaded in %s (bounds %v, hot %v)",
			spec.name, d.Kind, spec.path, time.Since(start).Round(time.Millisecond), d.Bounds() != nil, d.Hot())
	}
	return reg, nil
}

// cacheBytes maps the -result-cache-mb flag onto Config.ResultCacheBytes,
// where 0 means "use the default" and negative disables.
func cacheBytes(mb int64) int64 {
	if mb <= 0 {
		return -1
	}
	return mb << 20
}

func serve(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	var data dataFlags
	fs.Var(&data, "data", "dataset to serve as name=path (repeatable; required)")
	addr := fs.String("addr", ":8080", "listen address")
	bufKB := fs.Int("buffer", 1024, "buffer pool size in KB for disk stores")
	landmarks := fs.Int("landmarks", netclus.DefaultLandmarks,
		"lower-bound pruning landmarks per dataset (0 disables)")
	capacity := fs.Int64("capacity", 0, "admission capacity in cost units (0 = 2x GOMAXPROCS)")
	queue := fs.Int("queue", 0, "admission wait-queue depth (0 = 64)")
	clusterCost := fs.Int64("cluster-cost", 0, "admission cost of a clustering request (0 = 8)")
	writeCost := fs.Int64("write-cost", 0, "admission cost of a mutation batch (0 = 2)")
	timeout := fs.Duration("timeout", 10*time.Second, "default per-request deadline")
	maxTimeout := fs.Duration("max-timeout", 2*time.Minute, "cap on client-requested timeout_ms")
	workers := fs.Int("cluster-workers", 8, "cap on the workers parameter of clustering requests")
	cacheMB := fs.Int64("result-cache-mb", 64, "result cache budget in MiB (0 disables)")
	drain := fs.Duration("drain-timeout", 30*time.Second, "shutdown budget for in-flight requests")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof on this side address (off when empty)")
	fs.Parse(args)
	if len(data) == 0 {
		return fmt.Errorf("at least one -data name=path is required")
	}

	logger := log.New(os.Stderr, "netclusd ", log.LstdFlags)
	reg, err := buildRegistry(data, *bufKB, *landmarks, logger)
	if err != nil {
		return err
	}
	srv, err := server.New(server.Config{
		Addr:              *addr,
		Registry:          reg,
		Capacity:          *capacity,
		MaxQueue:          *queue,
		Costs:             server.EndpointCosts{Cluster: *clusterCost, Write: *writeCost},
		DefaultTimeout:    *timeout,
		MaxTimeout:        *maxTimeout,
		MaxClusterWorkers: *workers,
		ResultCacheBytes:  cacheBytes(*cacheMB),
		Log:               logger,
	})
	if err != nil {
		reg.Close()
		return err
	}

	if *pprofAddr != "" {
		// The query server runs on its own mux, so the default mux carries
		// only the pprof handlers; keep it on a separate (loopback) address.
		go func() {
			logger.Printf("pprof on %s/debug/pprof/", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				logger.Printf("pprof listener: %v", err)
			}
		}()
	}

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	logger.Printf("serving %d dataset(s) on %s", len(reg.List()), *addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		// Listener died before any signal: the drain never ran, so close
		// the stores here.
		reg.Close()
		return err
	case s := <-sig:
		logger.Printf("signal %s: draining (budget %s)", s, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			return fmt.Errorf("drain: %w", err)
		}
		if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		logger.Printf("drained cleanly")
		return nil
	}
}
