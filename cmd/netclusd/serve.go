package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // profiling endpoints on the (side) default mux, behind -pprof
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"netclus"
	"netclus/internal/server"
)

// dataSpec is one -data name=path[,hot][,nocache] flag. nocache exempts the
// dataset from the result cache — registering the same data twice, once plain
// and once nocache, gives loadtest a cached/uncached A/B pair in one process.
type dataSpec struct {
	name, path string
	hot        bool
	nocache    bool
}

// dataFlags collects repeated -data flags.
type dataFlags []dataSpec

func (d *dataFlags) String() string {
	parts := make([]string, len(*d))
	for i, s := range *d {
		parts[i] = s.name + "=" + s.path
		if s.hot {
			parts[i] += ",hot"
		}
		if s.nocache {
			parts[i] += ",nocache"
		}
	}
	return strings.Join(parts, " ")
}

func (d *dataFlags) Set(v string) error {
	name, rest, ok := strings.Cut(v, "=")
	if !ok || name == "" || rest == "" {
		return fmt.Errorf("want name=path[,hot][,nocache], got %q", v)
	}
	spec := dataSpec{name: name}
	spec.path, rest, _ = strings.Cut(rest, ",")
	if spec.path == "" {
		return fmt.Errorf("want name=path[,hot][,nocache], got %q", v)
	}
	for _, opt := range strings.Split(rest, ",") {
		switch opt {
		case "":
		case "hot":
			spec.hot = true
		case "nocache":
			spec.nocache = true
		default:
			return fmt.Errorf("unknown dataset option %q in %q (want hot or nocache)", opt, v)
		}
	}
	*d = append(*d, spec)
	return nil
}

// isStoreDir reports whether path is a netclus disk store (a directory
// holding meta.bin) rather than a text-file prefix.
func isStoreDir(path string) bool {
	st, err := os.Stat(filepath.Join(path, "meta.bin"))
	return err == nil && st.Mode().IsRegular()
}

// buildRegistry loads every -data spec into a registry, closing already
// loaded datasets on failure.
func buildRegistry(specs []dataSpec, bufKB, landmarks int, logger *log.Logger) (*server.Registry, error) {
	reg := server.NewRegistry()
	for _, spec := range specs {
		var (
			d   *server.Dataset
			err error
		)
		start := time.Now()
		if isStoreDir(spec.path) {
			opts := netclus.StoreOptions{BufferBytes: bufKB * 1024}
			d, err = server.NewStoreDataset(spec.name, spec.path, opts, landmarks, spec.hot)
		} else {
			var n *netclus.Network
			if n, err = netclus.LoadNetworkFiles(spec.path, true); err == nil {
				d, err = server.NewNetworkDataset(spec.name, spec.path, n, landmarks, spec.hot)
			}
		}
		if err != nil {
			reg.Close()
			return nil, fmt.Errorf("dataset %s: %w", spec.name, err)
		}
		d.DisableCache = spec.nocache
		if err := reg.Add(d); err != nil {
			d.Close()
			reg.Close()
			return nil, err
		}
		logger.Printf("dataset %s: %s %s loaded in %s (bounds %v, hot %v)",
			spec.name, d.Kind, spec.path, time.Since(start).Round(time.Millisecond), d.Bounds() != nil, d.Hot())
	}
	return reg, nil
}

// cacheBytes maps the -result-cache-mb flag onto Config.ResultCacheBytes,
// where 0 means "use the default" and negative disables.
func cacheBytes(mb int64) int64 {
	if mb <= 0 {
		return -1
	}
	return mb << 20
}

func serve(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	var data dataFlags
	fs.Var(&data, "data", "dataset to serve as name=path (repeatable; required)")
	addr := fs.String("addr", ":8080", "listen address")
	bufKB := fs.Int("buffer", 1024, "buffer pool size in KB for disk stores")
	landmarks := fs.Int("landmarks", netclus.DefaultLandmarks,
		"lower-bound pruning landmarks per dataset (0 disables)")
	capacity := fs.Int64("capacity", 0, "admission capacity in cost units (0 = 2x GOMAXPROCS)")
	queue := fs.Int("queue", 0, "admission wait-queue depth (0 = 64)")
	clusterCost := fs.Int64("cluster-cost", 0, "admission cost of a clustering request (0 = 8)")
	timeout := fs.Duration("timeout", 10*time.Second, "default per-request deadline")
	maxTimeout := fs.Duration("max-timeout", 2*time.Minute, "cap on client-requested timeout_ms")
	workers := fs.Int("cluster-workers", 8, "cap on the workers parameter of clustering requests")
	cacheMB := fs.Int64("result-cache-mb", 64, "result cache budget in MiB (0 disables)")
	drain := fs.Duration("drain-timeout", 30*time.Second, "shutdown budget for in-flight requests")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof on this side address (off when empty)")
	fs.Parse(args)
	if len(data) == 0 {
		return fmt.Errorf("at least one -data name=path is required")
	}

	logger := log.New(os.Stderr, "netclusd ", log.LstdFlags)
	reg, err := buildRegistry(data, *bufKB, *landmarks, logger)
	if err != nil {
		return err
	}
	srv, err := server.New(server.Config{
		Addr:              *addr,
		Registry:          reg,
		Capacity:          *capacity,
		MaxQueue:          *queue,
		Costs:             server.EndpointCosts{Cluster: *clusterCost},
		DefaultTimeout:    *timeout,
		MaxTimeout:        *maxTimeout,
		MaxClusterWorkers: *workers,
		ResultCacheBytes:  cacheBytes(*cacheMB),
		Log:               logger,
	})
	if err != nil {
		reg.Close()
		return err
	}

	if *pprofAddr != "" {
		// The query server runs on its own mux, so the default mux carries
		// only the pprof handlers; keep it on a separate (loopback) address.
		go func() {
			logger.Printf("pprof on %s/debug/pprof/", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				logger.Printf("pprof listener: %v", err)
			}
		}()
	}

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	logger.Printf("serving %d dataset(s) on %s", len(reg.List()), *addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		// Listener died before any signal: the drain never ran, so close
		// the stores here.
		reg.Close()
		return err
	case s := <-sig:
		logger.Printf("signal %s: draining (budget %s)", s, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			return fmt.Errorf("drain: %w", err)
		}
		if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		logger.Printf("drained cleanly")
		return nil
	}
}
