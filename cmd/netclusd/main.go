// Command netclusd serves netclus datasets over HTTP/JSON: ε-range, kNN and
// clustering queries against disk stores or in-memory networks, with
// admission control, per-request deadlines, Prometheus metrics and a
// graceful drain on SIGTERM. See DESIGN.md §8.
//
//	netclusd serve    -data ol=data/ol -data sf=data/sf.store -addr :8080
//	netclusd loadtest -target http://localhost:8080 -dataset ol -duration 10s
//
// A -data path naming a directory that contains meta.bin is opened as a disk
// store; anything else is read as the <prefix>.node/.edge/.pnt text files.
package main

import (
	"fmt"
	"os"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "serve":
		err = serve(args)
	case "loadtest":
		err = loadtest(args)
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "netclusd: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "netclusd %s: %v\n", cmd, err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `netclusd <command> [flags]

commands:
  serve     serve datasets over HTTP (run with -h for flags)
  loadtest  drive mixed query traffic at a running netclusd and
            report latency/throughput`)
}
