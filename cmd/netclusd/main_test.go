package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"netclus"
	"netclus/internal/server"
	"netclus/internal/server/api"
)

// writeTestData writes a small grid network with points both as text files
// (prefix) and as a disk store (dir), and returns the two paths.
func writeTestData(t *testing.T) (prefix, dir string) {
	t.Helper()
	rng := rand.New(rand.NewSource(3))
	base, err := netclus.GridNetwork(10, 10, 10, 2, 15, rng)
	if err != nil {
		t.Fatal(err)
	}
	n, err := netclus.GenerateUniform(base, 300, rng)
	if err != nil {
		t.Fatal(err)
	}
	tmp := t.TempDir()
	prefix = filepath.Join(tmp, "net")
	nodes, err := os.Create(prefix + ".node")
	if err != nil {
		t.Fatal(err)
	}
	defer nodes.Close()
	edges, err := os.Create(prefix + ".edge")
	if err != nil {
		t.Fatal(err)
	}
	defer edges.Close()
	pts, err := os.Create(prefix + ".pnt")
	if err != nil {
		t.Fatal(err)
	}
	defer pts.Close()
	if err := netclus.WriteNetwork(n, nodes, edges, pts); err != nil {
		t.Fatal(err)
	}
	dir = filepath.Join(tmp, "store")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	// Default page size: buildRegistry opens stores with default options.
	if err := netclus.BuildStore(dir, n, netclus.StoreOptions{}); err != nil {
		t.Fatal(err)
	}
	return prefix, dir
}

func TestDataFlagsAndStoreDetection(t *testing.T) {
	var d dataFlags
	if err := d.Set("ol=data/ol"); err != nil {
		t.Fatal(err)
	}
	if err := d.Set("sf=data/sf.store"); err != nil {
		t.Fatal(err)
	}
	if err := d.Set("hotsf=data/sf.store,hot"); err != nil {
		t.Fatal(err)
	}
	if err := d.Set("rawsf=data/sf.store,hot,nocache"); err != nil {
		t.Fatal(err)
	}
	if got := d.String(); got != "ol=data/ol sf=data/sf.store hotsf=data/sf.store,hot rawsf=data/sf.store,hot,nocache" {
		t.Fatalf("String = %q", got)
	}
	if !d[2].hot || d[0].hot || d[1].hot {
		t.Fatalf("hot flags = %+v", d)
	}
	if !d[3].nocache || !d[3].hot || d[2].nocache {
		t.Fatalf("nocache flags = %+v", d)
	}
	for _, bad := range []string{"nope", "=path", "name=", "x=p,warm"} {
		if err := d.Set(bad); err == nil {
			t.Fatalf("Set(%q) succeeded", bad)
		}
	}
	prefix, dir := writeTestData(t)
	if isStoreDir(prefix) {
		t.Error("text prefix detected as store")
	}
	if !isStoreDir(dir) {
		t.Error("store dir not detected")
	}
}

func TestBuildRegistryBothKinds(t *testing.T) {
	prefix, dir := writeTestData(t)
	logger := log.New(os.Stderr, "", 0)
	reg, err := buildRegistry([]dataSpec{
		{name: "mem", path: prefix},
		{name: "disk", path: dir},
	}, 256, 4, logger)
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	list := reg.List()
	if len(list) != 2 {
		t.Fatalf("datasets = %d", len(list))
	}
	for _, d := range list {
		if d.Bounds() == nil {
			t.Errorf("dataset %s has no bounds", d.Name)
		}
		if d.NumPoints() != 300 {
			t.Errorf("dataset %s points = %d", d.Name, d.NumPoints())
		}
	}
	if _, err := buildRegistry([]dataSpec{{name: "x", path: filepath.Join(t.TempDir(), "missing")}},
		256, 0, logger); err == nil {
		t.Fatal("missing dataset path did not error")
	}
}

func TestParseMixAndPercentiles(t *testing.T) {
	mix, err := parseMix("knn:8,range:4,cluster:1")
	if err != nil {
		t.Fatal(err)
	}
	if len(mix) != 3 {
		t.Fatalf("mix = %v", mix)
	}
	rng := rand.New(rand.NewSource(1))
	counts := map[string]int{}
	for i := 0; i < 13000; i++ {
		counts[pickEndpoint(mix, rng)]++
	}
	if counts["knn"] < counts["range"] || counts["range"] < counts["cluster"] {
		t.Fatalf("weights not respected: %v", counts)
	}
	for _, bad := range []string{"", "knn", "knn:x", "warp:1", "knn:0"} {
		if _, err := parseMix(bad); err == nil {
			t.Fatalf("parseMix(%q) succeeded", bad)
		}
	}
	lats := []time.Duration{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if p := percentile(lats, 50); p != 5 {
		t.Fatalf("p50 = %v", p)
	}
	if p := percentile(lats, 99); p != 10 {
		t.Fatalf("p99 = %v", p)
	}
	if p := percentile(nil, 50); p != 0 {
		t.Fatalf("p50 of empty = %v", p)
	}
}

// TestLoadtestAgainstServer boots the serving stack in-process, drives the
// loadtest core at it, and then drains mid-traffic: the summary must show
// zero transport errors and only 200s before the drain begins.
func TestLoadtestAgainstServer(t *testing.T) {
	prefix, dir := writeTestData(t)
	logger := log.New(os.Stderr, "", 0)
	reg, err := buildRegistry([]dataSpec{
		{name: "mem", path: prefix},
		{name: "disk", path: dir},
	}, 256, 4, logger)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()

	points, cacheStats, _, err := datasetProbe(client, ts.URL, "disk")
	if err != nil {
		t.Fatal(err)
	}
	if points != 300 {
		t.Fatalf("points = %d", points)
	}
	if cacheStats == nil {
		t.Fatal("no result-cache stats for a cached dataset")
	}
	if _, _, _, err := datasetProbe(client, ts.URL, "nope"); err == nil {
		t.Fatal("unknown dataset did not error")
	}

	mix, err := parseMix("knn:6,range:3,cluster:1")
	if err != nil {
		t.Fatal(err)
	}
	cfg := ltConfig{
		target: ts.URL, dataset: "disk", points: points, workers: 4,
		duration: 400 * time.Millisecond, mix: mix, eps: 20, k: 5, seed: 1,
	}
	sum := runLoadtest(client, cfg)
	if sum.Errors != 0 {
		t.Fatalf("%d transport errors", sum.Errors)
	}
	if sum.Requests == 0 {
		t.Fatal("no requests ran")
	}
	for ep, es := range sum.Endpoints {
		for code, n := range es.Status {
			if code != "200" {
				t.Errorf("%s: %d requests got status %s", ep, n, code)
			}
		}
		if es.P50MS <= 0 || es.MaxMS < es.P99MS || es.P99MS < es.P50MS {
			t.Errorf("%s: implausible latencies %+v", ep, es)
		}
	}

	if sum.ResultCache == nil {
		t.Fatal("summary has no result-cache delta")
	}
	if total := sum.ResultCache.Hits + sum.ResultCache.Misses + sum.ResultCache.ContainmentHits +
		sum.ResultCache.SingleflightShared; total == 0 {
		t.Fatal("result-cache delta saw no traffic")
	}

	// Drain while a second loadtest is in flight: nothing may fail with a
	// transport error or a non-(200|503) status.
	done := make(chan ltSummary, 1)
	go func() {
		cfg2 := cfg
		cfg2.duration = 2 * time.Second
		cfg2.seed = 2
		done <- runLoadtest(client, cfg2)
	}()
	time.Sleep(150 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	sum = <-done
	if sum.Errors != 0 {
		t.Fatalf("drain dropped %d requests with transport errors", sum.Errors)
	}
	okSeen := false
	for ep, es := range sum.Endpoints {
		for code, n := range es.Status {
			switch code {
			case "200":
				okSeen = true
			case "503": // refused after the drain began
			default:
				t.Errorf("%s: %d requests got status %s during drain", ep, n, code)
			}
		}
	}
	if !okSeen {
		t.Fatal("no request completed before the drain")
	}
	if got := summarize("t", "d", 1, 0, nil); got.Requests != 0 || got.PerSecond != 0 {
		t.Fatalf("empty summarize = %+v", got)
	}
}

func TestServeFlagValidation(t *testing.T) {
	if err := serve([]string{"-addr", "127.0.0.1:0"}); err == nil {
		t.Fatal("serve without -data did not error")
	}
	if err := loadtest([]string{"-duration", "1ms"}); err == nil {
		t.Fatal("loadtest without -dataset did not error")
	}
}

// TestServeSignalDrain runs the real serve() entry point and delivers a
// SIGTERM: it must come back nil (clean drain) while requests succeed
// beforehand.
func TestServeSignalDrain(t *testing.T) {
	prefix, _ := writeTestData(t)
	const addr = "127.0.0.1:39181"
	errCh := make(chan error, 1)
	go func() {
		errCh <- serve([]string{
			"-addr", addr,
			"-data", "mem=" + prefix,
			"-landmarks", "4",
			"-drain-timeout", "5s",
		})
	}()
	// Wait for the listener, then check a query round-trips.
	var resp *http.Response
	var err error
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err = http.Get("http://" + addr + "/healthz")
		if err == nil || time.Now().After(deadline) {
			break
		}
		select {
		case serveErr := <-errCh:
			t.Fatalf("serve exited early: %v", serveErr)
		default:
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("healthz never came up: %v", err)
	}
	resp.Body.Close()
	resp, err = http.Get("http://" + addr + "/v1/mem/knn?p=1&k=3")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("knn: %v %v", err, resp)
	}
	resp.Body.Close()

	p, err := os.FindProcess(os.Getpid())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("serve after signal: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not drain after signal")
	}
}

// TestLoadtestCompareHotCold boots cold and hot replicas of the same store,
// runs the same mix against both, and checks the delta report is well formed.
func TestLoadtestCompareHotCold(t *testing.T) {
	_, dir := writeTestData(t)
	logger := log.New(os.Stderr, "", 0)
	reg, err := buildRegistry([]dataSpec{
		{name: "cold", path: dir},
		{name: "hot", path: dir, hot: true},
	}, 256, 4, logger)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()

	points, _, _, err := datasetProbe(client, ts.URL, "hot")
	if err != nil {
		t.Fatal(err)
	}
	mix, err := parseMix("knn:6,range:3")
	if err != nil {
		t.Fatal(err)
	}
	cfg := ltConfig{
		target: ts.URL, dataset: "cold", points: points, workers: 4,
		duration: 300 * time.Millisecond, mix: mix, eps: 20, k: 5, seed: 1,
	}
	cold := runLoadtest(client, cfg)
	cfg.dataset = "hot"
	cfg.run = 1
	hot := runLoadtest(client, cfg)
	if cold.Errors != 0 || hot.Errors != 0 {
		t.Fatalf("transport errors: cold %d, hot %d", cold.Errors, hot.Errors)
	}
	cmp := compareSummaries(cold, hot)
	if len(cmp.Delta) == 0 {
		t.Fatal("empty delta report")
	}
	for ep, d := range cmp.Delta {
		if d.P50Speedup <= 0 || d.MeanSpeedup <= 0 || d.Throughput <= 0 {
			t.Errorf("%s: implausible delta %+v", ep, d)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestLoadtestWriteMix drives a read-write mix against a live dataset and
// checks the summary: write latencies recorded, applied batches counted from
// the server's own delta stats, and at least some mutations acknowledged.
func TestLoadtestWriteMix(t *testing.T) {
	prefix, _ := writeTestData(t)
	logger := log.New(os.Stderr, "", 0)
	reg, err := buildRegistry([]dataSpec{
		{name: "live", path: prefix, live: true},
	}, 256, 4, logger)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()

	points, _, live, err := datasetProbe(client, ts.URL, "live")
	if err != nil {
		t.Fatal(err)
	}
	if live == nil {
		t.Fatal("live dataset reports no delta stats")
	}
	mix, err := parseMix("knn:4,range:2,write:3")
	if err != nil {
		t.Fatal(err)
	}
	writeMix, err := parseWriteMix("insert:2,move:1,delete:1")
	if err != nil {
		t.Fatal(err)
	}
	cfg := ltConfig{
		target: ts.URL, dataset: "live", points: points, workers: 4,
		duration: 400 * time.Millisecond, mix: mix, writeMix: writeMix,
		eps: 20, k: 5, seed: 1,
	}
	sum := runLoadtest(client, cfg)
	if sum.Errors != 0 {
		t.Fatalf("transport errors: %d", sum.Errors)
	}
	es, ok := sum.Endpoints["write"]
	if !ok || es.Requests == 0 {
		t.Fatalf("no write samples recorded: %+v", sum.Endpoints)
	}
	if es.P50MS <= 0 || es.P99MS < es.P50MS {
		t.Fatalf("implausible write latencies: %+v", es)
	}
	if es.Status["200"] == 0 {
		t.Fatalf("no write succeeded: %+v", es.Status)
	}
	if sum.Writes == nil {
		t.Fatal("summary has no write stats for a live dataset")
	}
	if sum.Writes.Batches == 0 || sum.Writes.Ops < sum.Writes.Batches {
		t.Fatalf("implausible write stats: %+v", *sum.Writes)
	}
	if int64(es.Status["200"]) != sum.Writes.Batches {
		t.Fatalf("acked writes %d != applied batches %d", es.Status["200"], sum.Writes.Batches)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestSubstreams: same inputs reproduce the same seed; changing seed, run or
// worker gives a distinct one. The old seed+worker derivation collided across
// -compare legs (run was not an input at all).
func TestSubstreams(t *testing.T) {
	if substream(1, 0, 3) != substream(1, 0, 3) {
		t.Fatal("substream is not deterministic")
	}
	seen := map[int64]string{}
	for seed := int64(1); seed <= 3; seed++ {
		for run := 0; run < 2; run++ {
			for w := 0; w < 8; w++ {
				s := substream(seed, run, w)
				if prev, dup := seen[s]; dup {
					t.Fatalf("substream collision: (%d,%d,%d) and %s", seed, run, w, prev)
				}
				seen[s] = fmt.Sprintf("(%d,%d,%d)", seed, run, w)
			}
		}
	}
}

// TestZipfPicker: with s > 1 the draw must be heavily skewed (the top point
// rank dominates) and deterministic for a fixed stream; every produced URL
// must decode through the same api DTOs the server uses.
func TestZipfPicker(t *testing.T) {
	mix, err := parseMix("knn:6,range:3,cluster:1")
	if err != nil {
		t.Fatal(err)
	}
	cfg := &ltConfig{points: 300, mix: mix, eps: 20, k: 5, zipf: 1.2}
	draw := func(seed int64) (map[string]int, map[string]int) {
		rng := rand.New(rand.NewSource(seed))
		p := newReqPicker(rng, cfg)
		eps, urls := map[string]int{}, map[string]int{}
		for i := 0; i < 4000; i++ {
			ep, vals := p.pick()
			eps[ep]++
			urls[ep+"?"+vals.Encode()]++
			switch ep {
			case "range":
				if _, err := api.DecodeRange(vals); err != nil {
					t.Fatalf("picker range values do not decode: %v", err)
				}
			case "knn":
				if _, err := api.DecodeKNN(vals); err != nil {
					t.Fatalf("picker knn values do not decode: %v", err)
				}
			case "cluster":
				if _, err := api.DecodeClusterValues(vals); err != nil {
					t.Fatalf("picker cluster values do not decode: %v", err)
				}
			}
		}
		return eps, urls
	}
	eps1, urls1 := draw(7)
	_, urls2 := draw(7)
	if fmt.Sprint(urls1) != fmt.Sprint(urls2) {
		t.Fatal("same stream produced different requests")
	}
	// knn carries the top mix weight, so under zipf it must dominate hard.
	if eps1["knn"] <= eps1["range"] || eps1["range"] < eps1["cluster"] {
		t.Fatalf("zipf mix skew not respected: %v", eps1)
	}
	// Skew concentrates requests: far fewer distinct URLs than draws.
	if len(urls1) > 1500 {
		t.Fatalf("zipf draw too flat: %d distinct URLs of 4000", len(urls1))
	}
	// Uniform mode spreads much wider over the same point space.
	cfg.zipf = 0
	rng := rand.New(rand.NewSource(7))
	p := newReqPicker(rng, cfg)
	uni := map[string]bool{}
	for i := 0; i < 4000; i++ {
		ep, vals := p.pick()
		uni[ep+"?"+vals.Encode()] = true
	}
	if len(uni) <= len(urls1) {
		t.Fatalf("uniform (%d) not wider than zipf (%d)", len(uni), len(urls1))
	}
}

// TestLoadtestCacheCompare serves the same store twice — cached and nocache —
// and drives a skewed mix at both: the cached leg must report a result-cache
// delta with hits, the nocache leg none.
func TestLoadtestCacheCompare(t *testing.T) {
	_, dir := writeTestData(t)
	logger := log.New(os.Stderr, "", 0)
	reg, err := buildRegistry([]dataSpec{
		{name: "cached", path: dir, hot: true},
		{name: "nocache", path: dir, hot: true, nocache: true},
	}, 256, 4, logger)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()

	points, rc, _, err := datasetProbe(client, ts.URL, "cached")
	if err != nil {
		t.Fatal(err)
	}
	if rc == nil {
		t.Fatal("cached dataset reports no cache stats")
	}
	if _, rc, _, err := datasetProbe(client, ts.URL, "nocache"); err != nil || rc != nil {
		t.Fatalf("nocache dataset probe = %+v, %v", rc, err)
	}
	mix, err := parseMix("knn:6,range:3")
	if err != nil {
		t.Fatal(err)
	}
	cfg := ltConfig{
		target: ts.URL, dataset: "nocache", points: points, workers: 4,
		duration: 300 * time.Millisecond, mix: mix, eps: 20, k: 5, seed: 1, zipf: 1.2,
	}
	cold := runLoadtest(client, cfg)
	cfg.dataset = "cached"
	cfg.run = 1
	hot := runLoadtest(client, cfg)
	if cold.Errors != 0 || hot.Errors != 0 {
		t.Fatalf("transport errors: cold %d, hot %d", cold.Errors, hot.Errors)
	}
	if cold.ResultCache != nil {
		t.Fatalf("nocache leg reported cache stats %+v", cold.ResultCache)
	}
	if hot.ResultCache == nil {
		t.Fatal("cached leg reported no cache stats")
	}
	served := hot.ResultCache.Hits + hot.ResultCache.ContainmentHits
	if served == 0 || hot.ResultCache.HitRatio <= 0 {
		t.Fatalf("zipf run produced no cache reuse: %+v", hot.ResultCache)
	}
	cmp := compareSummaries(cold, hot)
	if len(cmp.Delta) == 0 {
		t.Fatal("empty delta report")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}
