package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"netclus"
	"netclus/internal/server/api"
)

// ltSample is one finished loadtest request.
type ltSample struct {
	endpoint string
	code     int
	latency  time.Duration
	failed   bool // transport error, no status code
}

// endpointSummary aggregates one endpoint's samples.
type endpointSummary struct {
	Requests  int            `json:"requests"`
	Errors    int            `json:"errors"`
	Status    map[string]int `json:"status"`
	MeanMS    float64        `json:"mean_ms"`
	P50MS     float64        `json:"p50_ms"`
	P95MS     float64        `json:"p95_ms"`
	P99MS     float64        `json:"p99_ms"`
	MaxMS     float64        `json:"max_ms"`
	PerSecond float64        `json:"per_second"`
}

// ltCacheStats is the dataset's result-cache delta over one run, scraped from
// /v1/datasets before and after, plus the derived hit ratio.
type ltCacheStats struct {
	Hits               int64   `json:"hits"`
	Misses             int64   `json:"misses"`
	ContainmentHits    int64   `json:"containment_hits"`
	SingleflightShared int64   `json:"singleflight_shared"`
	HitRatio           float64 `json:"hit_ratio"`
}

// ltWriteStats is the dataset's write-path delta over one run, scraped from
// the live stats in /v1/datasets before and after: batches and ops the run
// committed, rejections, and the compactions it caused the server to run.
type ltWriteStats struct {
	Batches     int64 `json:"batches"`
	Ops         int64 `json:"ops"`
	Rejected    int64 `json:"rejected"`
	Compactions int64 `json:"compactions"`
	PendingOps  int64 `json:"pending_ops"`
}

// ltSummary is the loadtest report written to -out. Seed and Zipf record the
// generator inputs so a run is reproducible from its report alone.
type ltSummary struct {
	Target      string                     `json:"target"`
	Dataset     string                     `json:"dataset"`
	Workers     int                        `json:"workers"`
	Seed        int64                      `json:"seed"`
	Zipf        float64                    `json:"zipf"`
	Scale       float64                    `json:"scale,omitempty"`
	DurationS   float64                    `json:"duration_s"`
	Requests    int                        `json:"requests"`
	Errors      int                        `json:"errors"`
	PerSecond   float64                    `json:"per_second"`
	Endpoints   map[string]endpointSummary `json:"endpoints"`
	ResultCache *ltCacheStats              `json:"result_cache,omitempty"`
	Writes      *ltWriteStats              `json:"writes,omitempty"`
}

// percentile returns the p-th percentile of sorted (nearest-rank).
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p/100*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

// summarize folds the samples into the report.
func summarize(target, dataset string, workers int, elapsed time.Duration, samples []ltSample) ltSummary {
	sum := ltSummary{
		Target: target, Dataset: dataset, Workers: workers,
		DurationS: elapsed.Seconds(),
		Endpoints: make(map[string]endpointSummary),
	}
	byEP := make(map[string][]ltSample)
	for _, s := range samples {
		byEP[s.endpoint] = append(byEP[s.endpoint], s)
	}
	for ep, ss := range byEP {
		es := endpointSummary{Status: make(map[string]int)}
		var lats []time.Duration
		var total time.Duration
		for _, s := range ss {
			es.Requests++
			if s.failed {
				es.Errors++
				continue
			}
			es.Status[fmt.Sprintf("%d", s.code)]++
			lats = append(lats, s.latency)
			total += s.latency
		}
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		if len(lats) > 0 {
			es.MeanMS = ms(total / time.Duration(len(lats)))
			es.P50MS = ms(percentile(lats, 50))
			es.P95MS = ms(percentile(lats, 95))
			es.P99MS = ms(percentile(lats, 99))
			es.MaxMS = ms(lats[len(lats)-1])
		}
		if sum.DurationS > 0 {
			es.PerSecond = float64(es.Requests) / sum.DurationS
		}
		sum.Requests += es.Requests
		sum.Errors += es.Errors
		sum.Endpoints[ep] = es
	}
	if sum.DurationS > 0 {
		sum.PerSecond = float64(sum.Requests) / sum.DurationS
	}
	return sum
}

// epDelta compares one endpoint between the cold and hot runs; speedups are
// cold/hot ratios, so > 1 means the hot replica is faster.
type epDelta struct {
	P50Speedup  float64 `json:"p50_speedup"`
	P95Speedup  float64 `json:"p95_speedup"`
	MeanSpeedup float64 `json:"mean_speedup"`
	Throughput  float64 `json:"throughput_ratio"`
}

// ltCompareSummary is the -compare report: the same mix driven against two
// datasets (typically a cold store and its hot CSR replica) plus the
// per-endpoint deltas.
type ltCompareSummary struct {
	Cold  ltSummary          `json:"cold"`
	Hot   ltSummary          `json:"hot"`
	Delta map[string]epDelta `json:"delta"`
}

func ratio(cold, hot float64) float64 {
	if hot <= 0 {
		return 0
	}
	return cold / hot
}

// compareSummaries folds two runs of the same mix into the delta report.
func compareSummaries(cold, hot ltSummary) ltCompareSummary {
	cmp := ltCompareSummary{Cold: cold, Hot: hot, Delta: make(map[string]epDelta)}
	for ep, cs := range cold.Endpoints {
		hs, ok := hot.Endpoints[ep]
		if !ok {
			continue
		}
		cmp.Delta[ep] = epDelta{
			P50Speedup:  ratio(cs.P50MS, hs.P50MS),
			P95Speedup:  ratio(cs.P95MS, hs.P95MS),
			MeanSpeedup: ratio(cs.MeanMS, hs.MeanMS),
			Throughput:  ratio(hs.PerSecond, cs.PerSecond),
		}
	}
	return cmp
}

// mixEntry is one weighted endpoint of the traffic mix.
type mixEntry struct {
	endpoint string
	weight   int
}

// parseMix reads "knn:8,range:4,cluster:1,write:2". The write entry sends
// mutation batches against live datasets; -write-mix shapes their kind split.
func parseMix(s string) ([]mixEntry, error) {
	var mix []mixEntry
	for _, part := range strings.Split(s, ",") {
		name, w, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok {
			return nil, fmt.Errorf("bad mix entry %q (want endpoint:weight)", part)
		}
		var weight int
		if _, err := fmt.Sscanf(w, "%d", &weight); err != nil || weight < 0 {
			return nil, fmt.Errorf("bad mix weight %q", w)
		}
		switch name {
		case "knn", "range", "cluster", "write":
		default:
			return nil, fmt.Errorf("unknown mix endpoint %q (want knn, range, cluster or write)", name)
		}
		if weight > 0 {
			mix = append(mix, mixEntry{endpoint: name, weight: weight})
		}
	}
	if len(mix) == 0 {
		return nil, fmt.Errorf("empty traffic mix")
	}
	return mix, nil
}

// parseWriteMix reads "insert:2,move:1,delete:1" — the kind split of the
// mutation batches the mix's write entry sends.
func parseWriteMix(s string) ([]mixEntry, error) {
	var mix []mixEntry
	for _, part := range strings.Split(s, ",") {
		name, w, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok {
			return nil, fmt.Errorf("bad write-mix entry %q (want kind:weight)", part)
		}
		var weight int
		if _, err := fmt.Sscanf(w, "%d", &weight); err != nil || weight < 0 {
			return nil, fmt.Errorf("bad write-mix weight %q", w)
		}
		switch name {
		case "insert", "move", "delete":
		default:
			return nil, fmt.Errorf("unknown write kind %q (want insert, move or delete)", name)
		}
		if weight > 0 {
			mix = append(mix, mixEntry{endpoint: name, weight: weight})
		}
	}
	if len(mix) == 0 {
		return nil, fmt.Errorf("empty write mix")
	}
	return mix, nil
}

// pickEndpoint draws from the mix by weight.
func pickEndpoint(mix []mixEntry, rng *rand.Rand) string {
	total := 0
	for _, m := range mix {
		total += m.weight
	}
	n := rng.Intn(total)
	for _, m := range mix {
		if n < m.weight {
			return m.endpoint
		}
		n -= m.weight
	}
	return mix[len(mix)-1].endpoint
}

// datasetProbe asks the target about the dataset: its point count (so query
// point IDs can be drawn from the real ID space), its result-cache counters
// (nil when the dataset is served uncached), and its live write-path stats
// (nil when the dataset is immutable).
func datasetProbe(client *http.Client, target, dataset string) (int, *api.ResultCacheStats, *netclus.LiveStats, error) {
	resp, err := client.Get(target + "/v1/datasets")
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, nil, nil, fmt.Errorf("GET /v1/datasets: %s", resp.Status)
	}
	var body api.DatasetsResponse
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return 0, nil, nil, err
	}
	for _, d := range body.Datasets {
		if d.Name == dataset {
			if d.Points == 0 {
				return 0, nil, nil, fmt.Errorf("dataset %q has no points", dataset)
			}
			return d.Points, d.ResultCache, d.Live, nil
		}
	}
	return 0, nil, nil, fmt.Errorf("dataset %q not served (have %d datasets)", dataset, len(body.Datasets))
}

// ltConfig is one loadtest run: target and dataset, the traffic shape, and
// the substream coordinates (seed, run index) its workers draw from.
type ltConfig struct {
	target   string
	dataset  string
	points   int
	workers  int
	duration time.Duration
	mix      []mixEntry
	writeMix []mixEntry // kind split of write batches; nil when the mix has no writes
	eps      float64
	k        int
	seed     int64
	zipf     float64 // 0 = uniform, > 1 = zipf skew exponent
	scale    float64 // dataset scale, recorded in the report only
	run      int     // substream index: 0 primary leg, 1 the -compare leg

	// livePoints tracks the dataset's moving point count under writes, fed
	// back from MutateResponse so target IDs stay within the live ID space.
	livePoints *atomic.Int64
}

// runLoadtest drives the mixed workload and returns the summary. It is the
// testable core of the loadtest subcommand.
func runLoadtest(client *http.Client, cfg ltConfig) ltSummary {
	var before api.ResultCacheStats
	var liveBefore netclus.LiveStats
	hasCache, hasLive := false, false
	if _, rc, ls, err := datasetProbe(client, cfg.target, cfg.dataset); err == nil {
		if rc != nil {
			before, hasCache = *rc, true
		}
		if ls != nil {
			liveBefore, hasLive = *ls, true
		}
	}
	cfg.livePoints = new(atomic.Int64)
	cfg.livePoints.Store(int64(cfg.points))
	var (
		mu      sync.Mutex
		samples []ltSample
	)
	start := time.Now()
	deadline := start.Add(cfg.duration)
	var wg sync.WaitGroup
	for w := 0; w < cfg.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(substream(cfg.seed, cfg.run, w)))
			picker := newReqPicker(rng, &cfg)
			var local []ltSample
			for time.Now().Before(deadline) {
				ep, vals := picker.pick()
				var s ltSample
				if ep == "write" {
					s = doWrite(client, &cfg, picker.pickWrite())
				} else {
					url := cfg.target + "/v1/" + cfg.dataset + "/" + ep + "?" + vals.Encode()
					start := time.Now()
					resp, err := client.Get(url)
					s = ltSample{endpoint: ep, latency: time.Since(start)}
					if err != nil {
						s.failed = true
					} else {
						s.code = resp.StatusCode
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
					}
				}
				local = append(local, s)
			}
			mu.Lock()
			samples = append(samples, local...)
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	sum := summarize(cfg.target, cfg.dataset, cfg.workers, time.Since(start), samples)
	sum.Seed = cfg.seed
	sum.Zipf = cfg.zipf
	sum.Scale = cfg.scale
	if hasCache || hasLive {
		_, rc, ls, err := datasetProbe(client, cfg.target, cfg.dataset)
		if err == nil && hasCache && rc != nil {
			delta := api.ResultCacheStats{
				Hits:               rc.Hits - before.Hits,
				Misses:             rc.Misses - before.Misses,
				ContainmentHits:    rc.ContainmentHits - before.ContainmentHits,
				SingleflightShared: rc.SingleflightShared - before.SingleflightShared,
			}
			sum.ResultCache = &ltCacheStats{
				Hits:               delta.Hits,
				Misses:             delta.Misses,
				ContainmentHits:    delta.ContainmentHits,
				SingleflightShared: delta.SingleflightShared,
				HitRatio:           delta.HitRatio(),
			}
		}
		if err == nil && hasLive && ls != nil {
			sum.Writes = &ltWriteStats{
				Batches:     ls.Batches - liveBefore.Batches,
				Ops:         ls.Ops - liveBefore.Ops,
				Rejected:    ls.Rejected - liveBefore.Rejected,
				Compactions: ls.Compactions - liveBefore.Compactions,
				PendingOps:  ls.PendingOps,
			}
		}
	}
	return sum
}

// doWrite posts one mutation batch and feeds the server's post-batch point
// count back into the shared counter, keeping later target IDs in range.
func doWrite(client *http.Client, cfg *ltConfig, body []byte) ltSample {
	url := cfg.target + "/v1/datasets/" + cfg.dataset + "/points"
	start := time.Now()
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	s := ltSample{endpoint: "write", latency: time.Since(start)}
	if err != nil {
		s.failed = true
		return s
	}
	s.code = resp.StatusCode
	if resp.StatusCode == http.StatusOK {
		var mr api.MutateResponse
		if json.NewDecoder(resp.Body).Decode(&mr) == nil && mr.Points > 0 {
			cfg.livePoints.Store(int64(mr.Points))
		}
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return s
}

func loadtest(args []string) error {
	fs := flag.NewFlagSet("loadtest", flag.ExitOnError)
	target := fs.String("target", "http://127.0.0.1:8080", "base URL of the netclusd to load")
	dataset := fs.String("dataset", "", "dataset name to query (required)")
	duration := fs.Duration("duration", 10*time.Second, "how long to drive traffic")
	workers := fs.Int("workers", 8, "concurrent client connections")
	mixFlag := fs.String("mix", "knn:8,range:4,cluster:1", "traffic mix as endpoint:weight[,...]; include write:N to mutate live datasets")
	writeMixFlag := fs.String("write-mix", "insert:2,move:1,delete:1", "mutation kind split for the write share of the mix")
	eps := fs.Float64("eps", 1, "eps for range and clustering requests")
	k := fs.Int("k", 8, "k for kNN requests")
	seed := fs.Int64("seed", 1, "random seed")
	zipf := fs.Float64("zipf", 0, "zipf skew exponent over points, eps ranks and the mix (0 = uniform; else must be > 1)")
	scaleFlag := fs.Float64("scale", 0, "dataset scale factor, recorded verbatim in the report header")
	out := fs.String("out", "", "write the JSON summary to this file")
	compare := fs.String("compare", "",
		"drive the same mix against this second dataset (e.g. the hot replica or a nocache twin) and report deltas")
	fs.Parse(args)
	if *dataset == "" {
		return fmt.Errorf("-dataset is required")
	}
	if *zipf != 0 && *zipf <= 1 {
		return fmt.Errorf("-zipf must be 0 (uniform) or > 1, got %g", *zipf)
	}
	mix, err := parseMix(*mixFlag)
	if err != nil {
		return err
	}
	var writeMix []mixEntry
	for _, e := range mix {
		if e.endpoint == "write" {
			if writeMix, err = parseWriteMix(*writeMixFlag); err != nil {
				return err
			}
			break
		}
	}
	base := strings.TrimRight(*target, "/")
	client := &http.Client{Timeout: 2 * time.Minute}
	points, _, _, err := datasetProbe(client, base, *dataset)
	if err != nil {
		return err
	}
	fmt.Printf("loadtest: %s dataset %s (%d points), %d workers, mix %s, zipf %g, %s\n",
		base, *dataset, points, *workers, *mixFlag, *zipf, *duration)
	cfg := ltConfig{
		target: base, dataset: *dataset, points: points, workers: *workers,
		duration: *duration, mix: mix, eps: *eps, k: *k, seed: *seed, zipf: *zipf,
		scale: *scaleFlag, writeMix: writeMix,
	}
	sum := runLoadtest(client, cfg)
	printSummary(sum)

	var report any = sum
	errors := sum.Errors
	if *compare != "" {
		cpoints, _, _, err := datasetProbe(client, base, *compare)
		if err != nil {
			return err
		}
		if cpoints != points {
			return fmt.Errorf("datasets differ: %s has %d points, %s has %d", *dataset, points, *compare, cpoints)
		}
		fmt.Printf("loadtest: comparing against dataset %s\n", *compare)
		ccfg := cfg
		ccfg.dataset = *compare
		ccfg.run = 1
		hot := runLoadtest(client, ccfg)
		printSummary(hot)
		cmp := compareSummaries(sum, hot)
		for _, ep := range sortedKeys(cmp.Delta) {
			d := cmp.Delta[ep]
			fmt.Printf("  %-8s %s vs %s: p50 %.2fx  p95 %.2fx  mean %.2fx  throughput %.2fx\n",
				ep, *compare, *dataset, d.P50Speedup, d.P95Speedup, d.MeanSpeedup, d.Throughput)
		}
		report = cmp
		errors += hot.Errors
	}
	if *out != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *out)
	}
	if errors > 0 {
		return fmt.Errorf("%d transport errors", errors)
	}
	return nil
}

func sortedKeys(m map[string]epDelta) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func printSummary(sum ltSummary) {
	fmt.Printf("total: %d requests in %.1fs (%.0f req/s), %d transport errors\n",
		sum.Requests, sum.DurationS, sum.PerSecond, sum.Errors)
	if rc := sum.ResultCache; rc != nil {
		fmt.Printf("cache: %d hits, %d containment, %d misses, %d shared (hit ratio %.2f)\n",
			rc.Hits, rc.ContainmentHits, rc.Misses, rc.SingleflightShared, rc.HitRatio)
	}
	if w := sum.Writes; w != nil {
		fmt.Printf("writes: %d batches (%d ops, %d rejected), %d compactions, %d ops pending\n",
			w.Batches, w.Ops, w.Rejected, w.Compactions, w.PendingOps)
	}
	eps := make([]string, 0, len(sum.Endpoints))
	for ep := range sum.Endpoints {
		eps = append(eps, ep)
	}
	sort.Strings(eps)
	for _, ep := range eps {
		es := sum.Endpoints[ep]
		fmt.Printf("  %-8s %6d req (%.0f/s)  p50 %.2fms  p95 %.2fms  p99 %.2fms  max %.2fms  status %v\n",
			ep, es.Requests, es.PerSecond, es.P50MS, es.P95MS, es.P99MS, es.MaxMS, statusList(es.Status))
	}
}

func statusList(m map[string]int) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s:%d", k, m[k])
	}
	return "[" + strings.Join(parts, " ") + "]"
}
