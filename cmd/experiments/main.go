// Command experiments regenerates every table and figure of the paper's
// evaluation section (Yiu & Mamoulis, SIGMOD 2004, §5) plus the design
// ablations, at a configurable scale.
//
// Usage:
//
//	experiments [-scale 0.0625] [-k 10] [-seed 1] [-exp all] [-svg dir] [-o file]
//
// -exp selects a comma-separated subset of: fig10, fig11, fig12, table1,
// table2, fig13, fig14, fig15, storage, dijkstra, prune, extensions. -scale 1
// reproduces the paper's dataset sizes (|V| up to 175 K, N up to 1 M); the
// default 1/16 finishes in seconds. With -svg, the Figure 10 network maps,
// the Figure 11 per-method clustering maps and the Figure 15 merge-distance
// plot are written into the given directory.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"netclus/internal/exp"
	"netclus/internal/viz"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ExitOnError)
	scale := fs.Float64("scale", exp.DefaultScale, "dataset scale relative to the paper's sizes (1 = full)")
	k := fs.Int("k", 10, "number of clusters")
	seed := fs.Int64("seed", 1, "random seed")
	expsel := fs.String("exp", "all", "comma-separated experiments: fig10,fig11,fig12,table1,table2,fig13,fig14,fig15,storage,dijkstra,prune,extensions")
	svgDir := fs.String("svg", "", "directory to write SVG maps/plots into (optional)")
	outPath := fs.String("o", "", "write the report to this file instead of stdout")
	fs.Parse(args)

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	cfg := exp.Config{Scale: *scale, K: *k, Seed: *seed, Out: out}

	want := map[string]bool{}
	for _, name := range strings.Split(*expsel, ",") {
		want[strings.TrimSpace(strings.ToLower(name))] = true
	}
	all := want["all"]
	sep := func() { fmt.Fprintln(out) }
	writeSVG := func(name string, render func(io.Writer) error) error {
		if *svgDir == "" {
			return nil
		}
		if err := os.MkdirAll(*svgDir, 0o755); err != nil {
			return err
		}
		path := filepath.Join(*svgDir, name)
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		err = render(f)
		f.Close()
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", path)
		return nil
	}

	if all || want["fig10"] {
		rows, err := exp.Fig10Datasets(cfg)
		if err != nil {
			return err
		}
		for _, row := range rows {
			row := row
			err := writeSVG("fig10-"+strings.ToLower(row.Name)+".svg", func(w io.Writer) error {
				return viz.Render(w, row.Network, nil, viz.Options{
					Title: row.Name, HideEdges: false, PointRadius: 0.1,
				})
			})
			if err != nil {
				return err
			}
		}
		sep()
	}
	if all || want["fig11"] {
		res, err := exp.Fig11Effectiveness(cfg)
		if err != nil {
			return err
		}
		if *svgDir != "" {
			if err := os.MkdirAll(*svgDir, 0o755); err != nil {
				return err
			}
			for _, row := range res.Rows {
				name := strings.Map(func(r rune) rune {
					switch {
					case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
						return r
					case r == ' ', r == '(', r == ')':
						return '-'
					default:
						return -1
					}
				}, strings.ToLower(row.Method))
				path := filepath.Join(*svgDir, "fig11-"+name+".svg")
				f, err := os.Create(path)
				if err != nil {
					return err
				}
				err = viz.Render(f, res.Network, row.Labels, viz.Options{
					Title:          row.Method,
					MinClusterSize: 20,
				})
				f.Close()
				if err != nil {
					return err
				}
				fmt.Fprintf(out, "wrote %s\n", path)
			}
		}
		sep()
	}
	if all || want["fig12"] {
		if _, err := exp.Fig12IncrementalSpeedup(cfg, nil); err != nil {
			return err
		}
		sep()
	}
	if all || want["table1"] {
		if _, err := exp.Table1KMedoids(cfg); err != nil {
			return err
		}
		sep()
	}
	if all || want["table2"] {
		if _, err := exp.Table2Algorithms(cfg); err != nil {
			return err
		}
		sep()
	}
	if all || want["fig13"] {
		if _, err := exp.Fig13ScalabilityN(cfg); err != nil {
			return err
		}
		sep()
	}
	if all || want["fig14"] {
		if _, err := exp.Fig14ScalabilityV(cfg); err != nil {
			return err
		}
		sep()
	}
	if all || want["fig15"] {
		res, err := exp.Fig15MergeDistances(cfg)
		if err != nil {
			return err
		}
		err = writeSVG("fig15-merge-distances.svg", func(w io.Writer) error {
			return viz.PlotSeries(w, res.LastDistances, viz.PlotOptions{
				Title:  "Figure 15 — merge distance of the last merges",
				XLabel: "merge (tail)", YLabel: "distance", Bars: true,
				MarkY: res.Eps, MarkYLabel: "eps",
			})
		})
		if err != nil {
			return err
		}
		sep()
	}
	if all || want["storage"] {
		if _, err := exp.StorageAblation(cfg); err != nil {
			return err
		}
		sep()
	}
	if all || want["dijkstra"] {
		if _, err := exp.DijkstraAblation(cfg); err != nil {
			return err
		}
		sep()
	}
	if all || want["prune"] {
		if _, err := exp.PruneAblation(cfg); err != nil {
			return err
		}
		sep()
	}
	if all || want["extensions"] {
		if _, err := exp.ExtensionsDemo(cfg); err != nil {
			return err
		}
		sep()
	}
	return nil
}
