package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSelectedExperimentsWithSVG(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "report.txt")
	svg := filepath.Join(dir, "maps")
	err := run([]string{
		"-scale", "0.01", "-k", "4",
		"-exp", "fig11,fig15",
		"-svg", svg,
		"-o", out,
	})
	if err != nil {
		t.Fatal(err)
	}
	report, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Figure 11", "Figure 15", "eps-link"} {
		if !strings.Contains(string(report), want) {
			t.Fatalf("report missing %q:\n%s", want, report)
		}
	}
	maps, err := filepath.Glob(filepath.Join(svg, "*.svg"))
	if err != nil {
		t.Fatal(err)
	}
	if len(maps) != 6 {
		t.Fatalf("%d SVGs, want 6 (five method maps + the Figure 15 plot)", len(maps))
	}
	for _, m := range maps {
		data, err := os.ReadFile(m)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(data), "</svg>") {
			t.Fatalf("%s is not well-formed", m)
		}
	}
}

func TestRunUnknownExperimentIsNoop(t *testing.T) {
	out := filepath.Join(t.TempDir(), "r.txt")
	if err := run([]string{"-exp", "nonsense", "-o", out}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 0 {
		t.Fatalf("unknown selection produced output: %q", data)
	}
}

func TestRunBadOutputPath(t *testing.T) {
	if err := run([]string{"-o", filepath.Join(string(os.PathSeparator), "no-such-dir-xyz", "r.txt")}); err == nil {
		t.Fatal("want error for unwritable output path")
	}
}
