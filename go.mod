module netclus

go 1.22
