// BenchmarkStoreSuite records the disk-store performance trajectory into
// BENCH_store.json: cold vs warm read paths, record caches on vs off, and
// 1/4/8-worker DBSCAN + k-medoids runs over the store. Run it with
//
//	go test -run '^$' -bench StoreSuite -benchtime 1x .
//
// for a smoke pass (CI does) or with a larger -benchtime for stable numbers.
// The suite also asserts that cached and uncached clustering labels are
// byte-identical, so the perf harness doubles as an end-to-end cache
// invariant check.
package netclus_test

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"netclus"
)

// benchStoreResults accumulates the final measurement of every sub-benchmark
// (later runs of the same name overwrite earlier calibration runs).
var (
	benchStoreMu      sync.Mutex
	benchStoreResults = map[string]benchStoreEntry{}
)

type benchStoreEntry struct {
	NsPerOp float64 `json:"ns_per_op"`
	Iters   int     `json:"iters"`
}

type benchStoreReport struct {
	GoVersion  string                     `json:"go_version"`
	GOMAXPROCS int                        `json:"gomaxprocs"`
	Scale      float64                    `json:"scale"`
	Nodes      int                        `json:"nodes"`
	Points     int                        `json:"points"`
	Results    map[string]benchStoreEntry `json:"results"`
}

func recordBenchStore(b *testing.B, name string) {
	b.Helper()
	benchStoreMu.Lock()
	benchStoreResults[name] = benchStoreEntry{
		NsPerOp: float64(b.Elapsed().Nanoseconds()) / float64(b.N),
		Iters:   b.N,
	}
	benchStoreMu.Unlock()
}

func BenchmarkStoreSuite(b *testing.B) {
	scale := benchScale()
	g, gen, err := netclus.RoadDataset("OL", scale, 10)
	if err != nil {
		b.Fatal(err)
	}
	dir := b.TempDir()
	if err := netclus.BuildStore(dir, g, netclus.StoreOptions{}); err != nil {
		b.Fatal(err)
	}
	report := benchStoreReport{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Scale:      scale,
		Nodes:      g.NumNodes(),
		Points:     g.NumPoints(),
		Results:    benchStoreResults,
	}
	b.Cleanup(func() {
		benchStoreMu.Lock()
		defer benchStoreMu.Unlock()
		if len(benchStoreResults) == 0 {
			return
		}
		writeBenchReport(b, "BENCH_store.json", report)
	})

	cachedOpts := netclus.StoreOptions{PoolShards: 8}
	uncachedOpts := netclus.StoreOptions{PoolShards: 8, DisableRecordCaches: true}
	modes := []struct {
		name string
		opts netclus.StoreOptions
	}{
		{"cached", cachedOpts},
		{"uncached", uncachedOpts},
	}

	// Cold read path: every iteration opens a fresh store (empty pool and
	// caches) and pays the faults of one full adjacency sweep.
	for _, mode := range modes {
		mode := mode
		b.Run("neighbors/cold/"+mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				s, err := netclus.OpenStore(dir, mode.opts)
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				for u := 0; u < s.NumNodes(); u++ {
					if _, err := s.Neighbors(netclus.NodeID(u)); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				s.Close()
				b.StartTimer()
			}
			recordBenchStore(b, "neighbors/cold/"+mode.name)
		})
	}

	// Warm read path: pool and caches primed, random probes.
	for _, mode := range modes {
		mode := mode
		b.Run("neighbors/warm/"+mode.name, func(b *testing.B) {
			s, err := netclus.OpenStore(dir, mode.opts)
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			for u := 0; u < s.NumNodes(); u++ {
				if _, err := s.Neighbors(netclus.NodeID(u)); err != nil {
					b.Fatal(err)
				}
			}
			rng := rand.New(rand.NewSource(1))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Neighbors(netclus.NodeID(rng.Intn(s.NumNodes()))); err != nil {
					b.Fatal(err)
				}
			}
			recordBenchStore(b, "neighbors/warm/"+mode.name)
		})
	}

	// Clustering over the disk store at 1/4/8 workers, caches on and off.
	var labelRef []int32
	for _, mode := range modes {
		mode := mode
		for _, workers := range []int{1, 4, 8} {
			workers := workers
			name := fmt.Sprintf("dbscan/workers=%d/%s", workers, mode.name)
			b.Run(name, func(b *testing.B) {
				s, err := netclus.OpenStore(dir, mode.opts)
				if err != nil {
					b.Fatal(err)
				}
				defer s.Close()
				var labels []int32
				for i := 0; i < b.N; i++ {
					res, err := netclus.DBSCAN(s, netclus.DBSCANOptions{Eps: gen.Eps(), MinPts: 3, Workers: workers})
					if err != nil {
						b.Fatal(err)
					}
					labels = res.Labels
				}
				recordBenchStore(b, name)
				// Cache invariant: every mode and worker count must produce
				// byte-identical labels.
				b.StopTimer()
				if labelRef == nil {
					labelRef = labels
				} else if len(labels) != len(labelRef) {
					b.Fatalf("label count %d, want %d", len(labels), len(labelRef))
				} else {
					for i := range labelRef {
						if labels[i] != labelRef[i] {
							b.Fatalf("%s: label %d = %d, reference %d", name, i, labels[i], labelRef[i])
						}
					}
				}
			})
		}
	}
	for _, mode := range modes {
		mode := mode
		for _, workers := range []int{1, 4, 8} {
			workers := workers
			name := fmt.Sprintf("kmedoids/workers=%d/%s", workers, mode.name)
			b.Run(name, func(b *testing.B) {
				s, err := netclus.OpenStore(dir, mode.opts)
				if err != nil {
					b.Fatal(err)
				}
				defer s.Close()
				for i := 0; i < b.N; i++ {
					_, err := netclus.KMedoids(s, netclus.KMedoidsOptions{
						K: 10, Restarts: 8, Workers: workers,
						Rand: rand.New(rand.NewSource(7)),
					})
					if err != nil {
						b.Fatal(err)
					}
				}
				recordBenchStore(b, name)
			})
		}
	}
}
