// Dendrogram: explore a hierarchical clustering the way §5.3 of the paper
// proposes. Single-Link produces the full merge history in one network
// traversal; instead of guessing an ε up front (as ε-Link must), the analyst
// scans the merge-distance series for sharp jumps — each jump marks an
// "interesting" clustering level — and cuts the dendrogram there.
//
// The dataset has exact two-level structure along a highway: six dense
// point runs (kernels, spacing 0.1) grouped into three regions (kernels 4
// apart inside a region, regions ~90 apart). The jump detector finds both
// levels in one pass, and the tree is exported in Newick format.
//
//	go run ./examples/dendrogram [out.nwk]
package main

import (
	"fmt"
	"log"
	"os"
	"sort"

	"netclus"
)

func main() {
	// A 300-unit highway with a junction every unit.
	const nNodes = 301
	b := netclus.NewBuilder()
	for i := 0; i < nNodes; i++ {
		b.AddNode(netclus.Coord{X: float64(i)})
	}
	for i := 0; i+1 < nNodes; i++ {
		b.AddEdge(netclus.NodeID(i), netclus.NodeID(i+1), 1)
	}

	// Six kernels in three regions: region starts at 10, 110, 210; each has
	// kernels at +0 and +6 (so kernels within a region are 4 apart), each
	// kernel is a 2-unit run of points spaced 0.1.
	kernel := 0
	for _, region := range []float64{10, 110, 210} {
		for _, off := range []float64{0, 6} {
			start := region + off
			for x := start; x <= start+2; x += 0.1 {
				edge := int(x)
				b.AddPoint(netclus.NodeID(edge), netclus.NodeID(edge+1), x-float64(edge), int32(kernel))
			}
			kernel++
		}
	}
	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d points in 6 kernels forming 3 regions along a highway\n\n", g.NumPoints())

	res, err := netclus.SingleLink(g, netclus.SingleLinkOptions{})
	if err != nil {
		log.Fatal(err)
	}
	d := res.Dendrogram
	fmt.Printf("single-link: %d merges, %d final cluster(s)\n", len(d.Merges), res.FinalClusters)

	levels := d.InterestingLevels(8, 3)
	sort.Slice(levels, func(i, j int) bool { return levels[i].Ratio > levels[j].Ratio })
	if len(levels) > 2 {
		levels = levels[:2]
	}
	sort.Slice(levels, func(i, j int) bool { return levels[i].Index < levels[j].Index })

	fmt.Println("\ninteresting levels (strongest two jumps):")
	for _, l := range levels {
		cut := d.Merges[l.Index-1].Dist // just below the jump
		_, info := d.CutAt(cut, 2)
		fmt.Printf("  below merge %d (next distance %.2f, jump x%.0f): %d clusters, sizes %v\n",
			l.Index, l.Dist, l.Ratio, info.Clusters, info.Sizes)
	}
	fmt.Println("\n=> the fine level recovers the 6 kernels, the coarse level the 3 regions,")
	fmt.Println("   from a single Single-Link run — no eps needed in advance.")

	out := "dendrogram.nwk"
	if len(os.Args) > 1 {
		out = os.Args[1]
	}
	f, err := os.Create(out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := d.WriteNewick(f); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfull dendrogram written to %s (Newick; open in any tree viewer)\n", out)
}
