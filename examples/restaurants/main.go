// Restaurants: the paper's §1 motivating scenario. Cluster the restaurants
// of a city by their road-network distance to find the dining districts a
// location-based service would advertise — or where a chain should open its
// next branch.
//
// The example generates an Oldenburg-sized road map with restaurant
// clusters, discovers the districts with ε-Link, ranks them, picks the most
// central restaurant of the top district (its network medoid) as the branch
// suggestion, and writes an SVG map.
//
//	go run ./examples/restaurants [out.svg]
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"sort"

	"netclus"
)

func main() {
	out := "restaurants.svg"
	if len(os.Args) > 1 {
		out = os.Args[1]
	}

	// A city road map (Oldenburg-sized stand-in) with 2,500 restaurants
	// concentrated in 8 dining districts plus 1% scattered ones.
	city, err := netclus.RoadNetwork("OL", 0.5)
	if err != nil {
		log.Fatal(err)
	}
	cfg := netclus.DefaultClusterConfig(2500, 8, 0)
	cfg.SInit = suggestSInit(city, 2500, 8)
	rng := rand.New(rand.NewSource(7))
	g, err := netclus.GeneratePoints(city, cfg, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("city: %d junctions, %d road segments, %d restaurants\n\n",
		g.NumNodes(), g.NumEdges(), g.NumPoints())

	// Discover districts: restaurants chained within eps of each other
	// along the road network belong to the same district; districts with
	// fewer than 10 restaurants are ignored.
	res, err := netclus.EpsLink(g, netclus.EpsLinkOptions{Eps: cfg.Eps(), MinSup: 10})
	if err != nil {
		log.Fatal(err)
	}

	type district struct {
		label   int32
		members []netclus.PointID
	}
	byLabel := map[int32]*district{}
	for p, l := range res.Labels {
		if l == netclus.Noise {
			continue
		}
		d, ok := byLabel[l]
		if !ok {
			d = &district{label: l}
			byLabel[l] = d
		}
		d.members = append(d.members, netclus.PointID(p))
	}
	districts := make([]*district, 0, len(byLabel))
	for _, d := range byLabel {
		districts = append(districts, d)
	}
	sort.Slice(districts, func(i, j int) bool {
		return len(districts[i].members) > len(districts[j].members)
	})

	fmt.Println("dining districts by size:")
	for i, d := range districts {
		fmt.Printf("  #%d: %4d restaurants\n", i+1, len(d.members))
	}

	// Where should the chain open a branch? Inside the biggest district, at
	// its most central member: run 1-medoid clustering restricted to the
	// district via the evaluation function — here simply pick the member
	// minimizing the sum of network distances to a sample of its peers.
	top := districts[0]
	best, bestSum := netclus.PointID(-1), 0.0
	sample := top.members
	if len(sample) > 60 {
		sample = sample[:60]
	}
	for _, cand := range sample {
		sum := 0.0
		for _, other := range sample {
			d, err := netclus.PointDistance(g, cand, other)
			if err != nil {
				log.Fatal(err)
			}
			sum += d
		}
		if best < 0 || sum < bestSum {
			best, bestSum = cand, sum
		}
	}
	pi, err := g.PointInfo(best)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsuggested branch location: restaurant %d on road (%d,%d), %.2f from junction %d\n",
		best, pi.N1, pi.N2, pi.Pos, pi.N1)
	fmt.Printf("(mean network distance to %d district peers: %.3f)\n",
		len(sample), bestSum/float64(len(sample)))

	f, err := os.Create(out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	err = netclus.RenderSVG(f, g, res.Labels, netclus.RenderOptions{
		Title: "dining districts (eps-link)", MinClusterSize: 10,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("map written to %s\n", out)
}

// suggestSInit spaces each cluster over ~1% of the city's road length.
func suggestSInit(city *netclus.Network, n, k int) float64 {
	total := 0.0
	for u := 0; u < city.NumNodes(); u++ {
		adj, err := city.Neighbors(netclus.NodeID(u))
		if err != nil {
			continue
		}
		for _, nb := range adj {
			if netclus.NodeID(u) < nb.Node {
				total += nb.Weight
			}
		}
	}
	return total * 0.01 / (float64(n) / float64(k) * 3)
}
