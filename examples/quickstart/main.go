// Quickstart: build a small spatial network by hand, place objects on its
// edges, and run all three clustering paradigms of the paper — partitioning
// (k-medoids), density-based (ε-Link / DBSCAN) and hierarchical
// (Single-Link) — under the network (shortest-path) distance.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"netclus"
)

func main() {
	// A toy street map: two dense blocks of shops joined by a long avenue.
	//
	//	0 --- 1 --- 2          5 --- 6 --- 7
	//	|     |     |  avenue  |     |     |
	//	3 --- 4 ----+==========+---- 8 --- 9
	b := netclus.NewBuilder()
	coords := []netclus.Coord{
		{X: 0, Y: 1}, {X: 1, Y: 1}, {X: 2, Y: 1},
		{X: 0, Y: 0}, {X: 1, Y: 0},
		{X: 12, Y: 1}, {X: 13, Y: 1}, {X: 14, Y: 1},
		{X: 13, Y: 0}, {X: 14, Y: 0},
	}
	for _, c := range coords {
		b.AddNode(c)
	}
	type e struct {
		u, v netclus.NodeID
		w    float64
	}
	edges := []e{
		{0, 1, 1}, {1, 2, 1}, {0, 3, 1}, {1, 4, 1}, {3, 4, 1},
		{5, 6, 1}, {6, 7, 1}, {5, 8, 1}, {6, 8, 1}, {7, 9, 1}, {8, 9, 1},
		{4, 5, 10}, // the avenue: long in network distance
	}
	for _, ed := range edges {
		b.AddEdge(ed.u, ed.v, ed.w)
	}

	// Scatter objects densely inside each block, plus two lonely kiosks on
	// the avenue. Note the two kiosks are close in EUCLIDEAN space to
	// nothing, but the blocks are close only over the street network.
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 30; i++ {
		ed := edges[rng.Intn(5)] // west block
		b.AddPoint(ed.u, ed.v, rng.Float64()*ed.w, 0)
		ed = edges[5+rng.Intn(6)] // east block
		b.AddPoint(ed.u, ed.v, rng.Float64()*ed.w, 1)
	}
	b.AddPoint(4, 5, 3.0, -1)
	b.AddPoint(4, 5, 7.0, -1)

	net, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: %d nodes, %d edges, %d objects\n\n",
		net.NumNodes(), net.NumEdges(), net.NumPoints())

	// Density-based: objects chained within eps = 0.8 form clusters; the
	// avenue kiosks are too far from everything and become outliers.
	el, err := netclus.EpsLink(net, netclus.EpsLinkOptions{Eps: 0.8, MinSup: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("eps-link (eps=0.8):    %d clusters, outliers: %d\n",
		el.NumClusters, count(el.Labels, netclus.Noise))

	// DBSCAN with MinPts=3 produces the same picture at higher cost.
	db, err := netclus.DBSCAN(net, netclus.DBSCANOptions{Eps: 0.8, MinPts: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dbscan (MinPts=3):     %d clusters, %d range queries issued\n",
		db.NumClusters, db.Stats.RangeQueries)

	// Partitioning: k-medoids must place every object somewhere — the
	// kiosks get absorbed into the nearest block's cluster.
	km, err := netclus.KMedoids(net, netclus.KMedoidsOptions{K: 2, Rand: rng})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("k-medoids (k=2):       R = %.2f, medoids at points %v\n", km.R, km.Medoids)

	// Hierarchical: the full dendrogram. Cutting it at any distance t
	// reproduces eps-link with eps = t; the biggest merge-distance jump
	// separates "inside a block" from "across the avenue".
	sl, err := netclus.SingleLink(net, netclus.SingleLinkOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("single-link:           %d merges", len(sl.Dendrogram.Merges))
	if lv := sl.Dendrogram.InterestingLevels(5, 3); len(lv) > 0 {
		last := lv[len(lv)-1]
		fmt.Printf("; sharpest structure jump at merge %d (distance %.2f)", last.Index, last.Dist)
	}
	fmt.Println()
	at2 := sl.Dendrogram.LabelsAtCount(4)
	fmt.Printf("cut at 4 clusters:     sizes %v\n", sizes(at2))

	// Network vs Euclidean: the two kiosks sit 4 apart along the avenue but
	// the blocks' closest objects are ~10 apart over the network. Point IDs
	// were reassigned by edge at Build time, so find the kiosks by tag.
	var kiosks []netclus.PointID
	for p := 0; p < net.NumPoints(); p++ {
		if net.Tag(netclus.PointID(p)) == -1 {
			kiosks = append(kiosks, netclus.PointID(p))
		}
	}
	d, err := netclus.PointDistance(net, kiosks[0], kiosks[1])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nnetwork distance between the two kiosks: %.2f\n", d)
}

func count(labels []int32, l int32) int {
	n := 0
	for _, x := range labels {
		if x == l {
			n++
		}
	}
	return n
}

func sizes(labels []int32) []int {
	m := map[int32]int{}
	for _, l := range labels {
		m[l]++
	}
	var out []int
	for _, n := range m {
		out = append(out, n)
	}
	return out
}
