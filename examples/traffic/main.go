// Traffic: the paper's §6 time-dependent variant. Edge weights model travel
// TIME rather than length, and they change with the hour: at rush hour the
// arterial roads through the city centre slow down 4x. Clustering the same
// delivery stops at 4am and at 8am yields different time-parameterized
// clusters: at rush hour the centre splits what free-flowing traffic keeps
// together.
//
//	go run ./examples/traffic
package main

import (
	"fmt"
	"log"
	"math/rand"

	"netclus"
)

// congestion returns the rush-hour multiplier of an edge. Arterials are the
// edges crossing the city's central band (8 <= x <= 12 on a 20-wide grid).
func congestion(g *netclus.Network, u, v netclus.NodeID) float64 {
	a, b := g.Coord(u), g.Coord(v)
	mid := (a.X + b.X) / 2
	if mid >= 8 && mid <= 12 {
		return 4.0
	}
	return 1.0
}

func main() {
	rng := rand.New(rand.NewSource(5))
	city, err := netclus.GridNetwork(20, 20, 1.0, 0.3, 60, rng)
	if err != nil {
		log.Fatal(err)
	}

	// Delivery stops: two dense groups on either side of the central band,
	// close enough that free-flowing traffic links them through it.
	b := netclus.NewBuilder()
	for i := 0; i < city.NumNodes(); i++ {
		b.AddNode(city.Coord(netclus.NodeID(i)))
	}
	type edge struct {
		u, v netclus.NodeID
		w    float64
	}
	var edges []edge
	for u := 0; u < city.NumNodes(); u++ {
		adj, err := city.Neighbors(netclus.NodeID(u))
		if err != nil {
			log.Fatal(err)
		}
		for _, nb := range adj {
			if netclus.NodeID(u) < nb.Node {
				edges = append(edges, edge{netclus.NodeID(u), nb.Node, nb.Weight})
				b.AddEdge(netclus.NodeID(u), nb.Node, nb.Weight)
			}
		}
	}
	placed := 0
	for _, e := range edges {
		ax, bx := city.Coord(e.u).X, city.Coord(e.v).X
		ay, by := city.Coord(e.u).Y, city.Coord(e.v).Y
		mx, my := (ax+bx)/2, (ay+by)/2
		// West group around (6,10), east group around (14,10), and a thin
		// trail of stops across the central band linking them.
		near := func(cx, cy, r float64) bool {
			return (mx-cx)*(mx-cx)+(my-cy)*(my-cy) <= r*r
		}
		switch {
		case near(6, 10, 2.5), near(14, 10, 2.5):
			for i := 0; i < 4; i++ {
				b.AddPoint(e.u, e.v, rng.Float64()*e.w, 0)
				placed++
			}
		case my >= 9 && my <= 11 && mx > 8 && mx < 12:
			b.AddPoint(e.u, e.v, rng.Float64()*e.w, 1)
			placed++
		}
	}
	stops, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("delivery stops: %d on a %d-junction city\n\n", stops.NumPoints(), stops.NumNodes())

	// Cluster by travel time with eps = 1.6 minutes between consecutive
	// stops, at two times of day.
	const eps = 1.6
	cluster := func(label string, hour float64) int {
		snapshot := stops
		if hour >= 7 && hour <= 10 { // rush hour snapshot
			var err error
			snapshot, err = netclus.Reweight(stops, func(u, v netclus.NodeID, base float64) float64 {
				return base * congestion(stops, u, v)
			})
			if err != nil {
				log.Fatal(err)
			}
		}
		res, err := netclus.EpsLink(snapshot, netclus.EpsLinkOptions{Eps: eps, MinSup: 4})
		if err != nil {
			log.Fatal(err)
		}
		_, noise := clusterSizes(res.Labels)
		fmt.Printf("%s: %d clusters (%d stops unreachable in time)\n", label, res.NumClusters, noise)
		return res.NumClusters
	}

	free := cluster("04:00 (free flow)", 4)
	rush := cluster("08:00 (rush hour)", 8)

	fmt.Println()
	switch {
	case rush > free:
		fmt.Println("=> congestion splits the free-flow clusters: the central band is now 4x slower,")
		fmt.Println("   so the west and east groups cannot be served as one time-coherent route.")
	case rush == free:
		fmt.Println("=> congestion did not change the cluster structure at this eps.")
	default:
		fmt.Println("=> unexpected: fewer clusters at rush hour.")
	}
}

func clusterSizes(labels []int32) (map[int32]int, int) {
	m := map[int32]int{}
	noise := 0
	for _, l := range labels {
		if l == netclus.Noise {
			noise++
		} else {
			m[l]++
		}
	}
	return m, noise
}
