// Multimodal: the paper's §6 extension — clustering across different
// networks joined by transition edges. A coastal road network and a ferry
// network are combined through piers; shortest paths (and therefore
// clusters) may cross between them, paying the boarding cost on the
// transition edge.
//
// The example shows the same point set clustered three ways: roads only,
// ferries only, and the combined network — where harbour-side clusters from
// both modes merge through the piers.
//
//	go run ./examples/multimodal
package main

import (
	"fmt"
	"log"
	"math/rand"

	"netclus"
)

func main() {
	rng := rand.New(rand.NewSource(11))

	// The road network: a 20x20 street grid along the coast.
	roads, err := netclus.GridNetwork(20, 20, 1.0, 0.3, 80, rng)
	if err != nil {
		log.Fatal(err)
	}
	// The ferry network: a sparse line of sea routes with long hops.
	fb := netclus.NewBuilder()
	const stops = 8
	for i := 0; i < stops; i++ {
		fb.AddNode(netclus.Coord{X: float64(i) * 4, Y: 25})
	}
	for i := 0; i+1 < stops; i++ {
		fb.AddEdge(netclus.NodeID(i), netclus.NodeID(i+1), 4)
	}
	ferries, err := fb.Build()
	if err != nil {
		log.Fatal(err)
	}

	// Piers: two harbours connect street corners to ferry stops. Boarding
	// costs 1.5 (waiting + walking aboard).
	transitions := []netclus.Transition{
		{A: 19*20 + 2, B: 1, Weight: 1.5},  // west harbour
		{A: 19*20 + 17, B: 6, Weight: 1.5}, // east harbour
	}
	combined, offset, err := netclus.Combine(roads, ferries, transitions)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("combined network: %d nodes (%d road + %d ferry), %d edges, %d transitions\n",
		combined.NumNodes(), roads.NumNodes(), ferries.NumNodes(), combined.NumEdges(), len(transitions))

	// Scatter cafés near both harbours — some on streets, some at ferry
	// stops (floating cafés) — and a distant inland cluster.
	cb := netclus.NewBuilder()
	for i := 0; i < combined.NumNodes(); i++ {
		cb.AddNode(combined.Coord(netclus.NodeID(i)))
	}
	for u := 0; u < combined.NumNodes(); u++ {
		adj, err := combined.Neighbors(netclus.NodeID(u))
		if err != nil {
			log.Fatal(err)
		}
		for _, nb := range adj {
			if netclus.NodeID(u) < nb.Node {
				cb.AddEdge(netclus.NodeID(u), nb.Node, nb.Weight)
			}
		}
	}
	place := func(u, v netclus.NodeID, n int, tag int32) {
		w := mustWeight(combined, u, v)
		for i := 0; i < n; i++ {
			cb.AddPoint(u, v, rng.Float64()*w, tag)
		}
	}
	// West harbour: street cafés near the pier + floating cafés on the
	// first ferry leg. The pier transition keeps them within linking range.
	place(19*20+1, 19*20+2, 12, 0)   // streets by the west pier
	place(offset+1, offset+2, 6, 0)  // sea side of the west pier
	place(19*20+16, 19*20+17, 12, 1) // streets by the east pier
	place(offset+5, offset+6, 6, 1)  // sea side of the east pier
	place(2*20+2, 2*20+3, 10, 2)     // inland cluster, far from the sea
	cafes, err := cb.Build()
	if err != nil {
		log.Fatal(err)
	}

	const eps = 2.5
	res, err := netclus.EpsLink(cafes, netclus.EpsLinkOptions{Eps: eps, MinSup: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncombined clustering (eps=%.1f): %d clusters\n", eps, res.NumClusters)
	report(cafes, res.Labels, offset)

	// Cross-mode check: one street café and one floating café at the west
	// harbour should share a cluster only thanks to the pier.
	var street, sea netclus.PointID = -1, -1
	for p := 0; p < cafes.NumPoints(); p++ {
		pi, err := cafes.PointInfo(netclus.PointID(p))
		if err != nil {
			log.Fatal(err)
		}
		if cafes.Tag(netclus.PointID(p)) == 0 {
			if pi.N1 >= offset && sea < 0 {
				sea = netclus.PointID(p)
			}
			if pi.N2 < offset && street < 0 {
				street = netclus.PointID(p)
			}
		}
	}
	d, err := netclus.PointDistance(cafes, street, sea)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstreet cafe %d and floating cafe %d: network distance %.2f (same cluster: %v)\n",
		street, sea, d, res.Labels[street] == res.Labels[sea])
}

func mustWeight(g *netclus.Network, u, v netclus.NodeID) float64 {
	adj, err := g.Neighbors(u)
	if err != nil {
		log.Fatal(err)
	}
	for _, nb := range adj {
		if nb.Node == v {
			return nb.Weight
		}
	}
	log.Fatalf("no edge (%d,%d)", u, v)
	return 0
}

func report(g *netclus.Network, labels []int32, offset netclus.NodeID) {
	type stat struct{ road, sea int }
	stats := map[int32]*stat{}
	for p, l := range labels {
		if l == netclus.Noise {
			continue
		}
		s, ok := stats[l]
		if !ok {
			s = &stat{}
			stats[l] = s
		}
		pi, err := g.PointInfo(netclus.PointID(p))
		if err != nil {
			log.Fatal(err)
		}
		if pi.N1 >= offset {
			s.sea++
		} else {
			s.road++
		}
	}
	for l, s := range stats {
		kind := "road-only"
		switch {
		case s.road > 0 && s.sea > 0:
			kind = "cross-modal (via pier)"
		case s.sea > 0:
			kind = "sea-only"
		}
		fmt.Printf("  cluster %d: %d street cafes + %d floating cafes — %s\n", l, s.road, s.sea, kind)
	}
}
