package netclus

import (
	"netclus/internal/core"
	"netclus/internal/network"
	"netclus/internal/storage"
)

// Sentinel errors. Every failure returned by the package wraps one of these
// (or a context error, for cancelled runs), so callers can classify errors
// with errors.Is without parsing messages.
var (
	// ErrPointNotFound reports a PointID outside [0, NumPoints).
	ErrPointNotFound = network.ErrPointRange
	// ErrNodeNotFound reports a NodeID outside [0, NumNodes).
	ErrNodeNotFound = network.ErrNodeRange
	// ErrInvalidOptions reports an Options value a clustering algorithm
	// rejected (non-positive Eps, K out of range, ...).
	ErrInvalidOptions = core.ErrInvalidOptions
	// ErrStoreClosed reports a query on a Store after Close.
	ErrStoreClosed = storage.ErrClosed
)
